// Package analyzer reimplements the paper's static analysis tool (§V-C):
// it scans Hyperledger Fabric project trees for
//
//   - explicit PDC definitions: ".json" collection configuration files
//     carrying the fixed keywords Name, Policy, RequiredPeerCount,
//     MaxPeerCount, BlockToLive, MemberOnlyRead;
//
//   - implicit PDC usage: the "_implicit_org_" marker in chaincode;
//
//   - the optional "EndorsementPolicy" collection property, whose absence
//     means the project validates PDC transactions with the chaincode-level
//     policy (the vulnerable default of Use Case 2);
//
//   - the channel-default endorsement policy in configtx.yaml; and
//
//   - PDC leakage patterns in chaincode (Go via go/parser, JavaScript/
//     TypeScript via a lexical scan): read functions that return the value
//     obtained from GetPrivateData, and write functions that return the
//     value passed to PutPrivateData (the paper's Listings 1 and 2).
package analyzer

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// CollectionInfo summarizes one explicit collection definition.
type CollectionInfo struct {
	File string
	Name string
	// HasEndorsementPolicy reports whether the optional
	// "endorsementPolicy" property is set.
	HasEndorsementPolicy bool
}

// LeakFinding locates one leaking chaincode function.
type LeakFinding struct {
	File     string
	Function string
	// Kind is "read" (returns a GetPrivateData result) or "write"
	// (returns a value passed to PutPrivateData).
	Kind string
}

// ProjectReport is the analysis result for one project directory.
type ProjectReport struct {
	Dir  string
	Name string
	// CreatedYear comes from the project.json manifest; 0 if unknown.
	CreatedYear int
	// ExplicitPDC: the project defines collections via configuration
	// JSON.
	ExplicitPDC bool
	// ImplicitPDC: chaincode references "_implicit_org_" collections.
	ImplicitPDC bool
	// Collections are the explicit collection definitions found.
	Collections []CollectionInfo
	// ConfigtxPolicy is the channel-default endorsement rule found in
	// configtx.yaml ("" when no configtx.yaml or no rule found).
	ConfigtxPolicy string
	// Leaks are the leaking chaincode functions found.
	Leaks []LeakFinding
}

// IsPDC reports whether the project uses private data collections at all.
func (r *ProjectReport) IsPDC() bool { return r.ExplicitPDC || r.ImplicitPDC }

// UsesCollectionLevelPolicy reports whether any explicit collection
// defines its own endorsement policy.
func (r *ProjectReport) UsesCollectionLevelPolicy() bool {
	for _, c := range r.Collections {
		if c.HasEndorsementPolicy {
			return true
		}
	}
	return false
}

// HasReadLeak reports whether any chaincode function leaks via PDC reads.
func (r *ProjectReport) HasReadLeak() bool { return r.hasLeak("read") }

// HasWriteLeak reports whether any chaincode function leaks via PDC
// writes.
func (r *ProjectReport) HasWriteLeak() bool { return r.hasLeak("write") }

func (r *ProjectReport) hasLeak(kind string) bool {
	for _, l := range r.Leaks {
		if l.Kind == kind {
			return true
		}
	}
	return false
}

// manifest mirrors the project.json metadata file carrying what the
// paper's tool obtained from the GitHub API (creation date).
type manifest struct {
	Name      string `json:"name"`
	CreatedAt string `json:"created_at"`
}

// explicitKeywords are the fixed keywords of a collection configuration
// file the paper's tool searches for (case-insensitive match on JSON
// field names).
var explicitKeywords = []string{
	"name", "policy", "requiredpeercount", "maxpeercount", "blocktolive", "memberonlyread",
}

// minExplicitKeywords is how many of the keywords must appear for a JSON
// file to be classified as a collection configuration.
const minExplicitKeywords = 3

// implicitMarker flags implicit per-org collections in chaincode.
const implicitMarker = "_implicit_org_"

// ScanProject analyzes one project directory.
func ScanProject(dir string) (*ProjectReport, error) {
	report := &ProjectReport{Dir: dir, Name: filepath.Base(dir)}

	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Skip dependency trees, as the paper's tool scans
			// project sources.
			switch d.Name() {
			case "node_modules", "vendor", ".git":
				return filepath.SkipDir
			}
			return nil
		}
		switch {
		case d.Name() == "project.json":
			scanManifest(path, report)
		case strings.EqualFold(d.Name(), "configtx.yaml"):
			if rule := scanConfigtx(path); rule != "" {
				report.ConfigtxPolicy = rule
			}
		case strings.HasSuffix(path, ".json"):
			scanCollectionJSON(path, report)
		case strings.HasSuffix(path, ".go"):
			scanGoChaincode(path, report)
		case strings.HasSuffix(path, ".js") || strings.HasSuffix(path, ".ts"):
			scanJSChaincode(path, report)
		case strings.HasSuffix(path, ".java"):
			scanForImplicitMarker(path, report)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analyzer: scan %s: %w", dir, err)
	}
	return report, nil
}

func scanManifest(path string, report *ProjectReport) {
	data, err := os.ReadFile(path)
	if err != nil {
		return
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return
	}
	if m.Name != "" {
		report.Name = m.Name
	}
	// created_at is RFC 3339 or a plain date; the year is the leading
	// 4 digits either way.
	if len(m.CreatedAt) >= 4 {
		var year int
		if _, err := fmt.Sscanf(m.CreatedAt[:4], "%d", &year); err == nil {
			report.CreatedYear = year
		}
	}
}

// scanCollectionJSON classifies a JSON file as an explicit collection
// configuration when enough of the fixed keywords appear among its field
// names, and records each collection's name and EndorsementPolicy
// presence.
func scanCollectionJSON(path string, report *ProjectReport) {
	data, err := os.ReadFile(path)
	if err != nil {
		return
	}
	var entries []map[string]json.RawMessage
	if err := json.Unmarshal(data, &entries); err != nil {
		// A single collection object rather than an array.
		var one map[string]json.RawMessage
		if err := json.Unmarshal(data, &one); err != nil {
			return
		}
		entries = []map[string]json.RawMessage{one}
	}
	for _, entry := range entries {
		fields := make(map[string]bool, len(entry))
		for k := range entry {
			fields[strings.ToLower(k)] = true
		}
		hits := 0
		for _, kw := range explicitKeywords {
			if fields[kw] {
				hits++
			}
		}
		if hits < minExplicitKeywords {
			continue
		}
		report.ExplicitPDC = true
		info := CollectionInfo{File: path}
		if raw, ok := entry["name"]; ok {
			_ = json.Unmarshal(raw, &info.Name)
		} else if raw, ok := entry["Name"]; ok {
			_ = json.Unmarshal(raw, &info.Name)
		}
		info.HasEndorsementPolicy = fields["endorsementpolicy"]
		report.Collections = append(report.Collections, info)
	}
}

// scanConfigtx extracts the channel-default endorsement rule from a
// configtx.yaml: the Rule under the "Endorsement:" policy block. The scan
// is lexical (as the paper's Python tool was): it finds "Endorsement:"
// and takes the next "Rule:" value mentioning an implicitMeta quantifier.
func scanConfigtx(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	lines := strings.Split(string(data), "\n")
	inEndorsement := false
	for _, line := range lines {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "Endorsement:") {
			inEndorsement = true
			continue
		}
		if !inEndorsement {
			continue
		}
		if strings.HasPrefix(trimmed, "Rule:") {
			value := strings.TrimSpace(strings.TrimPrefix(trimmed, "Rule:"))
			value = strings.Trim(value, `"'`)
			value = strings.TrimPrefix(value, "ImplicitMeta:")
			value = strings.Trim(value, `"'`)
			for _, rule := range []string{"MAJORITY", "ANY", "ALL"} {
				if strings.HasPrefix(value, rule) {
					return value
				}
			}
			return ""
		}
		// A new top-level-ish key ends the Endorsement block.
		if strings.HasSuffix(trimmed, ":") && !strings.HasPrefix(line, " ") {
			inEndorsement = false
		}
	}
	return ""
}

func scanForImplicitMarker(path string, report *ProjectReport) {
	data, err := os.ReadFile(path)
	if err != nil {
		return
	}
	if strings.Contains(string(data), implicitMarker) {
		report.ImplicitPDC = true
	}
}
