package analyzer

import (
	"os"
	"regexp"
	"strings"
)

// scanJSChaincode analyzes a JavaScript/TypeScript chaincode source with
// a lexical scan (the paper's tool was similarly lexical). It detects
//
//   - the implicit PDC marker,
//   - read leaks: a variable assigned from getPrivateData (possibly via a
//     derivation chain like JSON.parse(buffer.toString())) that is later
//     returned, as in the paper's Listing 1, and
//   - write leaks: a function that calls putPrivateData and returns one
//     of the identifiers passed to it.
func scanJSChaincode(path string, report *ProjectReport) {
	data, err := os.ReadFile(path)
	if err != nil {
		return
	}
	src := string(data)
	if strings.Contains(src, implicitMarker) {
		report.ImplicitPDC = true
	}
	for _, fn := range splitJSFunctions(src) {
		if kind := classifyJSFunc(fn.body); kind != "" {
			report.Leaks = append(report.Leaks, LeakFinding{
				File:     path,
				Function: fn.name,
				Kind:     kind,
			})
		}
	}
}

type jsFunc struct {
	name string
	body string
}

// jsFuncStart matches common function heads: "async name(...) {",
// "function name(...) {", "name: async function(...) {",
// "const name = async (...) => {".
var jsFuncStart = regexp.MustCompile(
	`(?m)^\s*(?:async\s+)?(?:function\s+)?(?:(?:const|let|var)\s+)?([A-Za-z_$][\w$]*)\s*(?:=\s*(?:async\s*)?)?\(` +
		`[^)]*\)\s*(?:=>)?\s*\{`)

// splitJSFunctions slices a source file into named function bodies by
// brace matching from each function head.
func splitJSFunctions(src string) []jsFunc {
	var out []jsFunc
	locs := jsFuncStart.FindAllStringSubmatchIndex(src, -1)
	for _, loc := range locs {
		name := src[loc[2]:loc[3]]
		switch name {
		// Control-flow heads look like function heads to the regex.
		case "if", "for", "while", "switch", "catch", "return":
			continue
		}
		openBrace := strings.IndexByte(src[loc[0]:loc[1]], '{')
		if openBrace < 0 {
			continue
		}
		start := loc[0] + openBrace
		depth := 0
		end := -1
		for i := start; i < len(src); i++ {
			switch src[i] {
			case '{':
				depth++
			case '}':
				depth--
				if depth == 0 {
					end = i
				}
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			continue
		}
		out = append(out, jsFunc{name: name, body: src[start : end+1]})
	}
	return out
}

var (
	jsGetAssign = regexp.MustCompile(`(?:const|let|var)\s+([\w$]+)\s*=\s*(?:await\s+)?[\w$.]*getPrivateData\s*\(`)
	jsAssign    = regexp.MustCompile(`(?:const|let|var)\s+([\w$]+)\s*=\s*(.+)`)
	jsReturn    = regexp.MustCompile(`return\s+([^;\n]+)`)
	jsPutCall   = regexp.MustCompile(`putPrivateData\s*\(([^;]*)\)`)
	jsIdent     = regexp.MustCompile(`[\w$]+(?:\[[^\]]+\])?`)
)

// classifyJSFunc returns "read", "write" or "".
func classifyJSFunc(body string) string {
	lower := strings.ToLower(body)

	// Read leak: taint identifiers from getPrivateData and propagate
	// through assignment chains, then look for a tainted return.
	if strings.Contains(lower, "getprivatedata") {
		tainted := make(map[string]bool)
		for _, m := range jsGetAssign.FindAllStringSubmatch(body, -1) {
			tainted[m[1]] = true
		}
		// Propagate: const y = ...x... taints y.
		for changed := true; changed; {
			changed = false
			for _, m := range jsAssign.FindAllStringSubmatch(body, -1) {
				name, rhs := m[1], m[2]
				if tainted[name] {
					continue
				}
				for t := range tainted {
					if containsIdent(rhs, t) {
						tainted[name] = true
						changed = true
						break
					}
				}
			}
		}
		for _, m := range jsReturn.FindAllStringSubmatch(body, -1) {
			expr := m[1]
			if strings.Contains(strings.ToLower(expr), "getprivatedata") {
				return "read"
			}
			for t := range tainted {
				if containsIdent(expr, t) {
					return "read"
				}
			}
		}
	}

	// Write leak: return of an identifier passed to putPrivateData.
	if put := jsPutCall.FindStringSubmatch(body); put != nil {
		args := jsIdent.FindAllString(put[1], -1)
		for _, m := range jsReturn.FindAllStringSubmatch(body, -1) {
			expr := strings.TrimSpace(m[1])
			for _, arg := range args {
				if arg == "" || isJSKeyword(arg) {
					continue
				}
				if containsIdent(expr, arg) {
					return "write"
				}
			}
		}
	}
	return ""
}

// containsIdent reports whether expr contains ident as a whole token
// (args[1] matches args[1] but k does not match key).
func containsIdent(expr, ident string) bool {
	idx := 0
	for {
		i := strings.Index(expr[idx:], ident)
		if i < 0 {
			return false
		}
		i += idx
		before := byte(' ')
		if i > 0 {
			before = expr[i-1]
		}
		afterIdx := i + len(ident)
		after := byte(' ')
		if afterIdx < len(expr) {
			after = expr[afterIdx]
		}
		if !isWordByte(before) && !isWordByte(after) {
			return true
		}
		idx = i + len(ident)
	}
}

func isWordByte(b byte) bool {
	return b == '_' || b == '$' ||
		(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}

func isJSKeyword(s string) bool {
	switch s {
	case "await", "Buffer", "from", "JSON", "stringify", "toString", "byte", "true", "false", "null":
		return true
	}
	return false
}
