package analyzer

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

// scanGoChaincode analyzes a Go source file for PDC usage and leakage
// patterns with the standard library parser.
//
// Detection rules (mirroring §IV-B on the paper's Listing 2):
//
//   - read leak: a function calls GetPrivateData, and returns either the
//     call result directly or a variable (transitively) derived from it;
//   - write leak: a function calls PutPrivateData(collection, key, value)
//     and returns an expression syntactically derived from the value (or
//     key) argument, e.g. "return args[1], nil".
//
// The implicit marker "_implicit_org_" is also detected here.
func scanGoChaincode(path string, report *ProjectReport) {
	src, err := os.ReadFile(path)
	if err != nil {
		return
	}
	if strings.Contains(string(src), implicitMarker) {
		report.ImplicitPDC = true
	}
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, src, parser.SkipObjectResolution)
	if err != nil {
		return
	}
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		kind := classifyGoFunc(fn)
		if kind != "" {
			report.Leaks = append(report.Leaks, LeakFinding{
				File:     path,
				Function: fn.Name.Name,
				Kind:     kind,
			})
		}
	}
}

// classifyGoFunc returns "read", "write", "event" or "" for a function.
// "event" marks private data flowing into a chaincode event payload
// (SetEvent), which is stored in plaintext in every peer's blockchain —
// the same exposure class as the payload leaks of §IV-B.
func classifyGoFunc(fn *ast.FuncDecl) string {
	// Pass 1: find tainted identifiers (assigned from GetPrivateData or
	// derived from tainted ones) and the argument expressions of
	// PutPrivateData calls.
	tainted := make(map[string]bool)
	var putArgs []ast.Expr
	sawGet := false

	// Iterate to a fixed point so chains like
	//   buffer := GetPrivateData(...); asset := parse(buffer)
	// are fully propagated.
	for {
		changed := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.AssignStmt:
				rhsTainted := false
				for _, rhs := range node.Rhs {
					if exprCallsMethod(rhs, "GetPrivateData") {
						sawGet = true
						rhsTainted = true
					}
					if exprUsesTainted(rhs, tainted) {
						rhsTainted = true
					}
				}
				if rhsTainted {
					for _, lhs := range node.Lhs {
						if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" && id.Name != "err" {
							if !tainted[id.Name] {
								tainted[id.Name] = true
								changed = true
							}
						}
					}
				}
			case *ast.CallExpr:
				if isMethodCall(node, "PutPrivateData") {
					putArgs = append(putArgs, node.Args...)
				}
			}
			return true
		})
		if !changed {
			break
		}
	}

	// Pass 2: inspect return statements and event emissions.
	leak := ""
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if leak != "" {
			return false
		}
		switch node := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range node.Results {
				if sawGet && (exprCallsMethod(res, "GetPrivateData") || exprUsesTainted(res, tainted)) {
					leak = "read"
					return false
				}
				for _, arg := range putArgs {
					if !isTrivialExpr(arg) && exprEqual(res, arg) {
						leak = "write"
						return false
					}
				}
			}
		case *ast.CallExpr:
			// SetEvent(name, payload): private data in the payload
			// lands in plaintext in every peer's blockchain.
			if isMethodCall(node, "SetEvent") && len(node.Args) >= 2 {
				payload := node.Args[1]
				if sawGet && exprUsesTainted(payload, tainted) {
					leak = "event"
					return false
				}
				for _, arg := range putArgs {
					if !isTrivialExpr(arg) && exprEqual(payload, arg) {
						leak = "event"
						return false
					}
				}
			}
		}
		return true
	})
	return leak
}

// exprCallsMethod reports whether expr contains a call to a method with
// the given name (on any receiver, e.g. stub.GetPrivateData or
// ctx.stub.GetPrivateData).
func exprCallsMethod(expr ast.Expr, method string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isMethodCall(call, method) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isMethodCall(call *ast.CallExpr, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == method
}

// exprUsesTainted reports whether expr references any tainted identifier.
func exprUsesTainted(expr ast.Expr, tainted map[string]bool) bool {
	if len(tainted) == 0 {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && tainted[id.Name] {
			found = true
			return false
		}
		return true
	})
	return found
}

// isTrivialExpr filters PutPrivateData arguments that cannot leak
// anything interesting when returned: string literals (collection names)
// and nil.
func isTrivialExpr(expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		return e.Name == "nil"
	}
	return false
}

// exprEqual compares two expressions structurally on the shapes that
// matter for the leak patterns: identifiers, selectors, index
// expressions, conversions like []byte(x), and call wrappers.
func exprEqual(a, b ast.Expr) bool {
	// Unwrap conversions/wrappers on either side: []byte(args[1]) and
	// string(value) leak their operand.
	if call, ok := a.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if exprEqual(call.Args[0], b) {
			return true
		}
	}
	if call, ok := b.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if exprEqual(a, call.Args[0]) {
			return true
		}
	}
	switch ea := a.(type) {
	case *ast.Ident:
		eb, ok := b.(*ast.Ident)
		return ok && ea.Name == eb.Name
	case *ast.SelectorExpr:
		eb, ok := b.(*ast.SelectorExpr)
		return ok && ea.Sel.Name == eb.Sel.Name && exprEqual(ea.X, eb.X)
	case *ast.IndexExpr:
		eb, ok := b.(*ast.IndexExpr)
		return ok && exprEqual(ea.X, eb.X) && exprEqual(indexExprOrNil(ea), indexExprOrNil(eb))
	case *ast.BasicLit:
		eb, ok := b.(*ast.BasicLit)
		return ok && ea.Kind == eb.Kind && ea.Value == eb.Value
	}
	return false
}

func indexExprOrNil(e *ast.IndexExpr) ast.Expr { return e.Index }
