package analyzer

import (
	"fmt"
	"strings"
)

// Advisory is one actionable warning about a scanned project, mapping a
// detected pattern to the paper's misuse classes.
type Advisory struct {
	// Severity is "high" or "medium".
	Severity string
	// UseCase names the paper misuse class ("UC1/UC2", "UC3").
	UseCase string
	// Message explains the exposure and the fix.
	Message string
}

// Advise derives the paper's misuse findings for one project:
//
//   - explicit PDC without a collection-level endorsement policy →
//     exposed to fake PDC results injection (Use Cases 1+2, §IV-A);
//   - even with a collection-level policy, read-only transactions
//     validate against the chaincode-level policy (Use Case 2) unless
//     the framework runs defense Feature 1;
//   - chaincode returning private data through the payload or an event →
//     PDC leakage (Use Case 3, §IV-B), fixed by Feature 2 or by not
//     returning the value.
func Advise(r *ProjectReport) []Advisory {
	var out []Advisory
	if r.ExplicitPDC && !r.UsesCollectionLevelPolicy() {
		policyNote := ""
		if r.ConfigtxPolicy != "" {
			policyNote = fmt.Sprintf(" (channel default: %q)", r.ConfigtxPolicy)
		}
		out = append(out, Advisory{
			Severity: "high",
			UseCase:  "UC1/UC2",
			Message: "collections define no endorsementPolicy: PDC transactions validate " +
				"against the chaincode-level policy" + policyNote + ", which admits " +
				"endorsements from collection non-members — exposed to fake PDC results " +
				"injection; define a collection-level endorsementPolicy",
		})
	}
	if r.ExplicitPDC && r.UsesCollectionLevelPolicy() {
		out = append(out, Advisory{
			Severity: "medium",
			UseCase:  "UC2",
			Message: "collection-level policy protects write-related transactions only: " +
				"read-only PDC transactions still validate against the chaincode-level " +
				"policy (fake read injection remains possible without defense Feature 1)",
		})
	}
	for _, l := range r.Leaks {
		var channel string
		switch l.Kind {
		case "read":
			channel = "returns a GetPrivateData result through the response payload"
		case "write":
			channel = "returns the value passed to PutPrivateData through the response payload"
		case "event":
			channel = "emits private data through a chaincode event"
		default:
			continue
		}
		out = append(out, Advisory{
			Severity: "high",
			UseCase:  "UC3",
			Message: fmt.Sprintf("%s (%s) %s: the value is stored in plaintext in every "+
				"peer's blockchain — PDC leakage; return a hash or nothing, or deploy "+
				"defense Feature 2", l.Function, shortPath(l.File), channel),
		})
	}
	return out
}

func shortPath(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// RenderAdvisories formats a project's advisories, one per line,
// prefixed by severity.
func RenderAdvisories(advisories []Advisory) string {
	if len(advisories) == 0 {
		return "no PDC misuse patterns found\n"
	}
	var b strings.Builder
	for _, a := range advisories {
		fmt.Fprintf(&b, "[%-6s %-7s] %s\n", a.Severity, a.UseCase, a.Message)
	}
	return b.String()
}
