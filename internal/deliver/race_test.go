package deliver

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/ledger"
)

// lockedChain is a concurrency-safe Source: appends (the commit path)
// and reads (catch-up replay) may race under -race. An optional gate
// blocks the first read of block gateAt until released, letting tests
// freeze a long replay mid-flight.
type lockedChain struct {
	mu     sync.RWMutex
	blocks []*ledger.Block

	gateAt  uint64
	gateOn  bool
	once    sync.Once
	reached chan struct{}
	release chan struct{}
}

func newLockedChain(n int) *lockedChain {
	c := &lockedChain{reached: make(chan struct{}), release: make(chan struct{})}
	for i := 0; i < n; i++ {
		c.append()
	}
	return c
}

func (c *lockedChain) Height() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return uint64(len(c.blocks))
}

func (c *lockedChain) Block(n uint64) (*ledger.Block, error) {
	if c.gateOn && n == c.gateAt {
		c.once.Do(func() { close(c.reached) })
		<-c.release
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if n >= uint64(len(c.blocks)) {
		return nil, fmt.Errorf("no block %d", n)
	}
	return c.blocks[n], nil
}

// append cuts the next block with one valid transaction.
func (c *lockedChain) append() *ledger.Block {
	c.mu.Lock()
	defer c.mu.Unlock()
	var prev []byte
	if len(c.blocks) > 0 {
		prev = c.blocks[len(c.blocks)-1].Hash()
	}
	tx := &ledger.Transaction{
		TxID:            fmt.Sprintf("tx-%d", len(c.blocks)),
		ResponsePayload: []byte("not-json"),
	}
	b := ledger.NewBlock(uint64(len(c.blocks)), prev, []*ledger.Transaction{tx})
	b.Metadata.ValidationFlags[0] = ledger.Valid
	c.blocks = append(c.blocks, b)
	return b
}

// drainInOrder consumes block events until the stream has covered
// [0, want) exactly once, failing on any gap, duplicate or reorder.
func drainInOrder(t *testing.T, sub *Subscription, want uint64) {
	t.Helper()
	next := uint64(0)
	deadline := time.After(30 * time.Second)
	for next < want {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				t.Fatalf("stream ended at block %d: %v", next, sub.Err())
			}
			be, isBlock := ev.(*BlockEvent)
			if !isBlock {
				continue
			}
			if be.Number != next {
				t.Fatalf("block event %d, want %d", be.Number, next)
			}
			next++
		case <-deadline:
			t.Fatalf("timed out at block %d of %d", next, want)
		}
	}
}

// TestChunkedReplayDoesNotStallPublish freezes a long catch-up replay
// in its off-lock bulk phase and proves the commit path still
// publishes: before chunked replay, Subscribe held the service lock for
// the entire 10k-block catch-up, so a commit landing on the serving
// peer stalled until the joiner was done.
func TestChunkedReplayDoesNotStallPublish(t *testing.T) {
	const preexisting = 300
	chain := newLockedChain(preexisting)
	chain.gateOn = true
	chain.gateAt = 100 // inside the off-lock bulk phase (final 64 run locked)
	svc := New(Config{Source: chain})

	subDone := make(chan *Subscription, 1)
	go func() {
		sub, err := svc.Subscribe(0)
		if err != nil {
			t.Errorf("subscribe: %v", err)
			subDone <- nil
			return
		}
		subDone <- sub
	}()

	<-chain.reached // replay is parked mid-catch-up, off the lock

	// A block commits on the serving peer while the replay is stuck.
	published := make(chan struct{})
	go func() {
		svc.Publish(chain.append())
		close(published)
	}()
	select {
	case <-published:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish stalled behind an in-flight catch-up replay")
	}

	close(chain.release)
	sub := <-subDone
	if sub == nil {
		t.FailNow()
	}
	defer sub.Close()
	// The subscriber still observes every block — including the one
	// committed mid-replay — exactly once, in order.
	drainInOrder(t, sub, preexisting+1)
}

// TestConcurrentCommitsDuringLongReplay races live commits against
// several long catch-up replays under -race: every subscriber must see
// every block exactly once in order, whether it arrived via the
// off-lock bulk replay, the locked final stretch, or live fan-out.
func TestConcurrentCommitsDuringLongReplay(t *testing.T) {
	const preexisting = 200
	const live = 50
	const subscribers = 3
	chain := newLockedChain(preexisting)
	svc := New(Config{Source: chain})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < live; i++ {
			svc.Publish(chain.append())
		}
	}()

	errs := make(chan error, subscribers)
	for i := 0; i < subscribers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub, err := svc.Subscribe(0)
			if err != nil {
				errs <- err
				return
			}
			defer sub.Close()
			drainInOrder(t, sub, preexisting+live)
			errs <- nil
		}()
	}
	wg.Wait()
	for i := 0; i < subscribers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
