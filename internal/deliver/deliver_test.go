package deliver

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/ledger"
	"repro/internal/metrics"
)

// fakeChain is a Source backed by a plain slice.
type fakeChain struct {
	blocks []*ledger.Block
}

func (f *fakeChain) Height() uint64 { return uint64(len(f.blocks)) }

func (f *fakeChain) Block(n uint64) (*ledger.Block, error) {
	if n >= uint64(len(f.blocks)) {
		return nil, fmt.Errorf("no block %d", n)
	}
	return f.blocks[n], nil
}

// appendBlock cuts a block with one transaction per code and returns it.
func (f *fakeChain) appendBlock(codes ...ledger.ValidationCode) *ledger.Block {
	var prev []byte
	if len(f.blocks) > 0 {
		prev = f.blocks[len(f.blocks)-1].Hash()
	}
	txs := make([]*ledger.Transaction, len(codes))
	for i := range codes {
		txs[i] = &ledger.Transaction{
			TxID:            fmt.Sprintf("tx-%d-%d", len(f.blocks), i),
			ResponsePayload: []byte("not-json"),
		}
	}
	b := ledger.NewBlock(uint64(len(f.blocks)), prev, txs)
	copy(b.Metadata.ValidationFlags, codes)
	f.blocks = append(f.blocks, b)
	return b
}

func collect(t *testing.T, sub *Subscription, n int) []Event {
	t.Helper()
	out := make([]Event, 0, n)
	for len(out) < n {
		ev, err := sub.Recv(context.Background())
		if err != nil {
			t.Fatalf("recv after %d events: %v", len(out), err)
		}
		out = append(out, ev)
	}
	return out
}

func TestLiveStreamOrder(t *testing.T) {
	chain := &fakeChain{}
	svc := New(Config{Source: chain})
	sub, err := svc.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	svc.Publish(chain.appendBlock(ledger.Valid, ledger.MVCCConflict))
	svc.Publish(chain.appendBlock(ledger.EndorsementPolicyFailure))

	events := collect(t, sub, 5)
	be, ok := events[0].(*BlockEvent)
	if !ok || be.Number != 0 || be.Replayed {
		t.Fatalf("event 0 = %#v", events[0])
	}
	st1 := events[1].(*TxStatusEvent)
	if st1.TxID != "tx-0-0" || st1.Code != ledger.Valid || st1.Detail != "" {
		t.Fatalf("status 1 = %+v", st1)
	}
	st2 := events[2].(*TxStatusEvent)
	if st2.Code != ledger.MVCCConflict || st2.Detail == "" {
		t.Fatalf("status 2 = %+v", st2)
	}
	if events[3].(*BlockEvent).Number != 1 {
		t.Fatalf("event 3 = %#v", events[3])
	}
	if st := events[4].(*TxStatusEvent); st.Code != ledger.EndorsementPolicyFailure {
		t.Fatalf("status 4 = %+v", st)
	}
}

func TestReplayThenLive(t *testing.T) {
	chain := &fakeChain{}
	svc := New(Config{Source: chain})
	svc.Publish(chain.appendBlock(ledger.Valid))
	svc.Publish(chain.appendBlock(ledger.Valid))

	sub, err := svc.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	svc.Publish(chain.appendBlock(ledger.Valid))

	events := collect(t, sub, 6)
	var nums []uint64
	for _, ev := range events {
		if be, ok := ev.(*BlockEvent); ok {
			nums = append(nums, be.Number)
			wantReplayed := be.Number < 2
			if be.Replayed != wantReplayed {
				t.Fatalf("block %d replayed = %v", be.Number, be.Replayed)
			}
		}
	}
	if len(nums) != 3 || nums[0] != 0 || nums[1] != 1 || nums[2] != 2 {
		t.Fatalf("block numbers = %v", nums)
	}
}

func TestSubscribeMidChainReplaysOnlyGap(t *testing.T) {
	chain := &fakeChain{}
	svc := New(Config{Source: chain})
	for i := 0; i < 4; i++ {
		svc.Publish(chain.appendBlock(ledger.Valid))
	}
	sub, err := svc.Subscribe(2)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	events := collect(t, sub, 4)
	if events[0].(*BlockEvent).Number != 2 || events[2].(*BlockEvent).Number != 3 {
		t.Fatalf("replayed blocks %d,%d; want 2,3",
			events[0].(*BlockEvent).Number, events[2].(*BlockEvent).Number)
	}
}

func TestServiceOverRestoredChainServesBacklog(t *testing.T) {
	// A peer restart replays blocks into the store without publishing;
	// a service created (or subscribed) afterwards must treat them as
	// replayable backlog, not wait for live publishes that never come.
	chain := &fakeChain{}
	chain.appendBlock(ledger.Valid)
	chain.appendBlock(ledger.Valid)
	svc := New(Config{Source: chain})
	sub, err := svc.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	events := collect(t, sub, 4)
	if events[0].(*BlockEvent).Number != 0 || events[2].(*BlockEvent).Number != 1 {
		t.Fatal("restored backlog not replayed")
	}
	// And the stream continues live from there.
	svc.Publish(chain.appendBlock(ledger.Valid))
	if ev := collect(t, sub, 1)[0].(*BlockEvent); ev.Number != 2 || ev.Replayed {
		t.Fatalf("live continuation = %+v", ev)
	}
}

func TestSlowConsumerEvicted(t *testing.T) {
	chain := &fakeChain{}
	var ctr metrics.Counters
	svc := New(Config{Source: chain, BufferSize: 4, Metrics: &ctr})
	sub, err := svc.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	// Each block enqueues 2 events; the third block overflows the
	// 4-slot buffer and must evict, not block the publisher.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 3; i++ {
			svc.Publish(chain.appendBlock(ledger.Valid))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publish blocked on a slow consumer")
	}
	// The stream ends after the buffered events.
	seen := 0
	for range sub.Events() {
		seen++
	}
	if seen != 4 {
		t.Fatalf("events before eviction = %d", seen)
	}
	if !errors.Is(sub.Err(), ErrSlowConsumer) {
		t.Fatalf("err = %v", sub.Err())
	}
	if ctr.Get(metrics.DeliverEvictedSlow) != 1 {
		t.Fatalf("evicted counter = %d", ctr.Get(metrics.DeliverEvictedSlow))
	}
	// An evicted subscriber no longer receives anything.
	svc.Publish(chain.appendBlock(ledger.Valid))
}

func TestCheckpointResumeExactlyOnce(t *testing.T) {
	chain := &fakeChain{}
	svc := New(Config{Source: chain})
	for i := 0; i < 3; i++ {
		svc.Publish(chain.appendBlock(ledger.Valid))
	}

	cp := NewCheckpoint(0)
	seen := make(map[uint64]int)

	sub, err := svc.Subscribe(cp.Next())
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range collect(t, sub, 4) { // blocks 0,1 and their statuses
		if be, ok := ev.(*BlockEvent); ok {
			seen[be.Number]++
			cp.Observe(be.Number)
		}
	}
	sub.Close()

	// "Restart": a fresh service over the same chain, which meanwhile
	// grew by one block.
	chain.appendBlock(ledger.Valid)
	svc2 := New(Config{Source: chain})
	sub2, err := svc2.Subscribe(cp.Next())
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Close()
	for _, ev := range collect(t, sub2, 4) {
		if be, ok := ev.(*BlockEvent); ok {
			seen[be.Number]++
			cp.Observe(be.Number)
		}
	}

	for n := uint64(0); n < 4; n++ {
		if seen[n] != 1 {
			t.Fatalf("block %d observed %d times; want exactly once (map %v)", n, seen[n], seen)
		}
	}
	if cp.Next() != 4 {
		t.Fatalf("checkpoint = %d", cp.Next())
	}
}

func TestSubscribeLiveSkipsBacklog(t *testing.T) {
	chain := &fakeChain{}
	svc := New(Config{Source: chain})
	svc.Publish(chain.appendBlock(ledger.Valid))

	sub := svc.SubscribeLive()
	defer sub.Close()
	select {
	case ev := <-sub.Events():
		t.Fatalf("live subscription replayed %#v", ev)
	default:
	}
	svc.Publish(chain.appendBlock(ledger.Valid))
	if be := collect(t, sub, 1)[0].(*BlockEvent); be.Number != 1 {
		t.Fatalf("first live block = %d", be.Number)
	}
}

func TestWaitTxStatus(t *testing.T) {
	chain := &fakeChain{}
	svc := New(Config{Source: chain})
	sub := svc.SubscribeLive()
	defer sub.Close()

	go func() {
		svc.Publish(chain.appendBlock(ledger.Valid))        // tx-0-0
		svc.Publish(chain.appendBlock(ledger.MVCCConflict)) // tx-1-0
	}()
	st, err := sub.WaitTxStatus(context.Background(), "tx-1-0")
	if err != nil {
		t.Fatal(err)
	}
	if st.Code != ledger.MVCCConflict || st.BlockNum != 1 {
		t.Fatalf("status = %+v", st)
	}

	// A status that never arrives honors the deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := sub.WaitTxStatus(ctx, "no-such-tx"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestTryTxStatusNonBlocking(t *testing.T) {
	chain := &fakeChain{}
	svc := New(Config{Source: chain})
	sub := svc.SubscribeLive()
	defer sub.Close()

	if st := sub.TryTxStatus("tx-0-0"); st != nil {
		t.Fatalf("empty buffer returned %+v", st)
	}
	svc.Publish(chain.appendBlock(ledger.Valid))
	if st := sub.TryTxStatus("tx-0-0"); st == nil || st.Code != ledger.Valid {
		t.Fatalf("buffered status = %+v", st)
	}
}

func TestMissingCollectionsMarker(t *testing.T) {
	chain := &fakeChain{}
	svc := New(Config{
		Source: chain,
		Missing: func(txID string) []string {
			if txID == "tx-0-0" {
				return []string{"pdc1"}
			}
			return nil
		},
	})
	sub := svc.SubscribeLive()
	defer sub.Close()
	svc.Publish(chain.appendBlock(ledger.Valid))
	st, err := sub.WaitTxStatus(context.Background(), "tx-0-0")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.MissingCollections) != 1 || st.MissingCollections[0] != "pdc1" {
		t.Fatalf("missing = %v", st.MissingCollections)
	}
}

func TestClosedSubscriptionReportsErrClosed(t *testing.T) {
	svc := New(Config{Source: &fakeChain{}})
	sub := svc.SubscribeLive()
	sub.Close()
	sub.Close() // idempotent
	if !errors.Is(sub.Err(), ErrClosed) {
		t.Fatalf("err = %v", sub.Err())
	}
	if _, err := sub.Recv(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv err = %v", err)
	}
}
