// Package deliver implements the peer-side delivery service: the push
// channel through which clients learn a transaction's fate. Real Fabric
// clients do not trust the orderer's return value — they watch the peer's
// block and commit-status event streams (Androulaki et al., §4.5), and
// the commit-notification path dominates observed client latency (Wang &
// Chu). This package reproduces that subsystem:
//
//   - every committed block is fanned out to subscribers as one BlockEvent
//     followed by one TxStatusEvent per transaction, in commit order;
//   - subscribers register from a start height and are caught up from the
//     peer's block store before going live (checkpointed replay), so a
//     consumer that remembers its last processed block observes every
//     block exactly once across peer restarts;
//   - per-subscriber buffers are bounded: a consumer that falls too far
//     behind is evicted (its stream closes with ErrSlowConsumer) rather
//     than blocking the commit path;
//   - deliver_* counters and histograms record stream health.
package deliver

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ledger"
	"repro/internal/metrics"
)

// DefaultBufferSize is the per-subscriber event bound when the
// configuration does not set one. A committed block contributes one block
// event plus one status event per transaction, so the default absorbs
// several hundred single-transaction blocks between reads.
const DefaultBufferSize = 1024

// ErrSlowConsumer marks a subscription evicted because its buffer
// overflowed: the consumer fell further behind the commit stream than the
// configured bound. Resubscribe from the last checkpoint to resume.
var ErrSlowConsumer = errors.New("deliver: subscriber evicted (buffer overflow)")

// ErrClosed is reported by a subscription closed by its consumer.
var ErrClosed = errors.New("deliver: subscription closed")

// Event is one item on a subscriber's stream: a *BlockEvent or a
// *TxStatusEvent. Events are shared between subscribers; consumers must
// not mutate them.
type Event interface {
	// BlockNumber is the committed block the event belongs to.
	BlockNumber() uint64
}

// EncSlots is the number of serialization-cache slots an event carries:
// one per wire codec (the wire transport uses slot 0 for JSON, slot 1
// for its binary codec).
const EncSlots = 2

// EncCache memoizes an event's serialized forms. Events fan out to
// every subscriber by pointer, and the wire transport used to re-marshal
// the same event once per remote subscriber; caching the encoding
// mirrors ledger.Transaction.Bytes() — an event is immutable once
// published, so its serialization is fixed from the first encode on.
// The slots are independent because each codec produces different
// bytes. Racing encoders may both run fn, but they produce identical
// bytes, so either result may win the slot.
type EncCache struct {
	enc [EncSlots]atomic.Pointer[[]byte]
}

// Encoded returns the cached serialization for slot, computing and
// caching it with fn on first use. A nil result from fn is returned but
// never cached. Callers must not mutate the returned bytes.
func (c *EncCache) Encoded(slot int, fn func() []byte) []byte {
	if p := c.enc[slot].Load(); p != nil {
		return *p
	}
	b := fn()
	if b == nil {
		return nil
	}
	c.enc[slot].Store(&b)
	return b
}

// BlockEvent announces one committed block. It precedes the block's
// per-transaction status events on the stream.
type BlockEvent struct {
	EncCache `json:"-"`

	Number uint64
	Block  *ledger.Block
	// Replayed marks events synthesized from the block store during
	// subscriber catch-up, as opposed to received live at commit time.
	Replayed bool
}

// BlockNumber implements Event.
func (e *BlockEvent) BlockNumber() uint64 { return e.Number }

// TxStatusEvent reports the final validation outcome of one transaction:
// the commit notification clients wait on.
type TxStatusEvent struct {
	EncCache `json:"-"`

	BlockNum uint64
	TxIndex  int
	TxID     string
	// Code is the validation flag the committing peer recorded.
	Code ledger.ValidationCode
	// Detail explains non-VALID codes in words (MVCC conflict, policy
	// failure, ...).
	Detail string
	// MissingCollections lists collections for which this peer is a
	// member but had not obtained the original private data at commit
	// time — the missing-private-data marker the reconciler works from.
	MissingCollections []string
	// ChaincodeEvent is the application event of a VALID transaction,
	// if one was emitted.
	ChaincodeEvent *ledger.ChaincodeEvent
	// Replayed marks events synthesized during subscriber catch-up.
	Replayed bool
}

// BlockNumber implements Event.
func (e *TxStatusEvent) BlockNumber() uint64 { return e.BlockNum }

// Detail strings for the validation codes.
func detailFor(code ledger.ValidationCode) string {
	switch code {
	case ledger.Valid:
		return ""
	case ledger.EndorsementPolicyFailure:
		return "endorsement policy unsatisfied by the verified signers"
	case ledger.MVCCConflict:
		return "a read version (or range) no longer matches the world state"
	case ledger.BadPayload:
		return "transaction payload failed to parse"
	case ledger.BadSignature:
		return "an endorsement signature failed verification"
	case ledger.DuplicateTxID:
		return "transaction ID already committed (replay)"
	default:
		return code.String()
	}
}

// Source is the committed chain the service replays catch-up from — in a
// peer, its ledger.BlockStore.
type Source interface {
	Height() uint64
	Block(number uint64) (*ledger.Block, error)
}

// Config wires a Service.
type Config struct {
	// Source is the peer's committed block store.
	Source Source
	// Missing, when non-nil, resolves a transaction's
	// missing-private-data collections for status events.
	Missing func(txID string) []string
	// BufferSize bounds each subscriber's event buffer; 0 selects
	// DefaultBufferSize.
	BufferSize int
	// Metrics, when non-nil, receives the deliver_* counters.
	Metrics *metrics.Counters
	// Timings, when non-nil, receives the deliver_publish histogram.
	Timings *metrics.Timings
}

// Service is one peer's delivery service.
type Service struct {
	cfg Config

	mu     sync.Mutex
	height uint64 // next block number to be published live
	subs   map[uint64]*Subscription
	nextID uint64
}

// New creates a delivery service over a committed chain. Blocks already
// in the source count as published: subscribers reach them via replay.
func New(cfg Config) *Service {
	if cfg.BufferSize <= 0 {
		cfg.BufferSize = DefaultBufferSize
	}
	s := &Service{cfg: cfg, subs: make(map[uint64]*Subscription)}
	if cfg.Source != nil {
		s.height = cfg.Source.Height()
	}
	return s
}

// Height returns the stream position: the number of blocks published (or
// replayable) so far.
func (s *Service) Height() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncHeightLocked()
	return s.height
}

// syncHeightLocked folds blocks that reached the store without a live
// publish (restart replay) into the published prefix, so they are served
// by catch-up instead of awaited forever.
func (s *Service) syncHeightLocked() {
	if s.cfg.Source == nil {
		return
	}
	if h := s.cfg.Source.Height(); h > s.height {
		s.height = h
	}
}

// eventsFor renders one committed block into its stream events.
func (s *Service) eventsFor(b *ledger.Block, replayed bool) []Event {
	events := make([]Event, 0, 1+len(b.Transactions))
	events = append(events, &BlockEvent{Number: b.Header.Number, Block: b, Replayed: replayed})
	for i, tx := range b.Transactions {
		code := b.Metadata.ValidationFlags[i]
		st := &TxStatusEvent{
			BlockNum: b.Header.Number,
			TxIndex:  i,
			TxID:     tx.TxID,
			Code:     code,
			Detail:   detailFor(code),
			Replayed: replayed,
		}
		if s.cfg.Missing != nil {
			st.MissingCollections = s.cfg.Missing(tx.TxID)
		}
		if code == ledger.Valid {
			if prp, err := tx.ResponsePayloadParsed(); err == nil {
				st.ChaincodeEvent = prp.Event
			}
		}
		events = append(events, st)
	}
	return events
}

// Publish fans a freshly committed block out to every live subscriber.
// The committing peer calls this once per block, in commit order, after
// the block (with its validation flags) reached the block store.
func (s *Service) Publish(b *ledger.Block) {
	start := time.Now()
	events := s.eventsFor(b, false)

	s.mu.Lock()
	defer s.mu.Unlock()
	if next := b.Header.Number + 1; next > s.height {
		s.height = next
	}
	s.inc(metrics.DeliverBlocks, 1)
	s.inc(metrics.DeliverStatuses, uint64(len(b.Transactions)))
	for id, sub := range s.subs {
		if sub.next > b.Header.Number {
			continue // already served by catch-up replay
		}
		if sub.next < b.Header.Number {
			// The subscriber missed intermediate publishes (hand-driven
			// commits can race); fill the gap from the store.
			if !s.replayGapLocked(sub, b.Header.Number) {
				s.evictLocked(id, sub)
				continue
			}
		}
		if !s.sendLocked(sub, events) {
			s.evictLocked(id, sub)
			continue
		}
		sub.next = b.Header.Number + 1
	}
	if s.cfg.Timings != nil {
		s.cfg.Timings.Observe(metrics.DeliverPublish, time.Since(start))
	}
}

// replayGapLocked pushes blocks [sub.next, upto) from the store into the
// subscription, reporting false when the buffer cannot hold them.
func (s *Service) replayGapLocked(sub *Subscription, upto uint64) bool {
	for n := sub.next; n < upto; n++ {
		b, err := s.cfg.Source.Block(n)
		if err != nil {
			return false
		}
		if !s.sendLocked(sub, s.eventsFor(b, true)) {
			return false
		}
		sub.next = n + 1
		s.inc(metrics.DeliverReplayedBlocks, 1)
	}
	return true
}

// sendLocked enqueues events without blocking; false means overflow.
func (s *Service) sendLocked(sub *Subscription, events []Event) bool {
	for _, ev := range events {
		select {
		case sub.ch <- ev:
		default:
			return false
		}
	}
	return true
}

func (s *Service) evictLocked(id uint64, sub *Subscription) {
	delete(s.subs, id)
	sub.err = ErrSlowConsumer
	close(sub.ch)
	s.inc(metrics.DeliverEvictedSlow, 1)
}

func (s *Service) inc(name string, delta uint64) {
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Add(name, delta)
	}
}

// replayChunk is how many blocks Subscribe reads per lock window while
// catching a subscriber up. The bulk of a long replay — a cold peer
// joining 10k blocks behind — runs off the service lock (the block
// store has its own synchronization), so concurrent Publish calls never
// stall behind it; only the final stretch is replayed under the lock,
// atomically with registration.
const replayChunk = 64

// Subscribe registers a consumer from a start height. Blocks [from,
// current) are replayed from the block store into the subscription before
// it goes live, atomically with registration, so no block is dropped or
// duplicated between catch-up and live delivery — the checkpointed-replay
// contract: feed Subscribe the checkpoint's next height after a restart
// and the stream resumes exactly once per block. Long replays are
// chunked: the lock is held only for the last replayChunk blocks, so
// the commit path keeps publishing while a subscriber catches up.
func (s *Service) Subscribe(from uint64) (*Subscription, error) {
	var backlog []Event
	next := from
	for {
		s.mu.Lock()
		s.syncHeightLocked()
		height := s.height
		if next >= height || height-next <= replayChunk {
			// Final stretch: replay the remainder under the lock and
			// register atomically, so nothing commits in between.
			for n := next; n < height; n++ {
				b, err := s.cfg.Source.Block(n)
				if err != nil {
					s.mu.Unlock()
					return nil, fmt.Errorf("deliver: replay block %d: %w", n, err)
				}
				backlog = append(backlog, s.eventsFor(b, true)...)
				s.inc(metrics.DeliverReplayedBlocks, 1)
			}

			// The buffer always leaves BufferSize headroom for live events
			// on top of whatever the catch-up replay enqueued.
			sub := &Subscription{
				svc:  s,
				id:   s.nextID,
				ch:   make(chan Event, len(backlog)+s.cfg.BufferSize),
				next: height,
			}
			if from > height {
				sub.next = from
			}
			for _, ev := range backlog {
				sub.ch <- ev
			}
			s.subs[sub.id] = sub
			s.nextID++
			s.inc(metrics.DeliverSubscriptions, 1)
			s.mu.Unlock()
			return sub, nil
		}
		s.mu.Unlock()

		// Bulk catch-up off the lock: these blocks are already committed
		// and immutable, so reading them can race nothing.
		upto := next + replayChunk
		for n := next; n < upto; n++ {
			b, err := s.cfg.Source.Block(n)
			if err != nil {
				return nil, fmt.Errorf("deliver: replay block %d: %w", n, err)
			}
			backlog = append(backlog, s.eventsFor(b, true)...)
			s.inc(metrics.DeliverReplayedBlocks, 1)
		}
		next = upto
	}
}

// SubscribeLive registers a consumer at the current stream position,
// atomically, with no catch-up: the first event is the next committed
// block. Commit-waiters subscribe this way before ordering a transaction
// so its status event cannot be missed.
func (s *Service) SubscribeLive() *Subscription {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncHeightLocked()
	sub := &Subscription{
		svc:  s,
		id:   s.nextID,
		ch:   make(chan Event, s.cfg.BufferSize),
		next: s.height,
	}
	s.subs[sub.id] = sub
	s.nextID++
	s.inc(metrics.DeliverSubscriptions, 1)
	return sub
}

// SubscriberCount returns the number of live subscriptions. Leak tests
// use it to assert that abandoned commit handles release their streams.
func (s *Service) SubscriberCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// Subscription is one consumer's bounded event stream.
type Subscription struct {
	svc *Service
	id  uint64
	ch  chan Event

	// next is the block number this subscription expects next; guarded
	// by svc.mu.
	next uint64
	// err is set when the service evicts the subscription or the
	// consumer closes it; guarded by svc.mu.
	err error
}

// Events exposes the stream for select-based consumers. The channel
// closes when the subscription is evicted or closed; check Err to
// distinguish.
func (sub *Subscription) Events() <-chan Event { return sub.ch }

// Err reports why the stream ended: ErrSlowConsumer after an eviction,
// ErrClosed after Close, nil while live.
func (sub *Subscription) Err() error {
	sub.svc.mu.Lock()
	defer sub.svc.mu.Unlock()
	return sub.err
}

// Close detaches the subscription from the service and closes the
// stream. Safe to call twice.
func (sub *Subscription) Close() {
	sub.svc.mu.Lock()
	defer sub.svc.mu.Unlock()
	if sub.err != nil {
		return
	}
	delete(sub.svc.subs, sub.id)
	sub.err = ErrClosed
	close(sub.ch)
}

// Recv returns the next event, honoring the context.
func (sub *Subscription) Recv(ctx context.Context) (Event, error) {
	select {
	case ev, ok := <-sub.ch:
		if !ok {
			return nil, sub.Err()
		}
		return ev, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TryTxStatus drains buffered events without blocking and returns the
// status event of txID if it is already in the buffer.
func (sub *Subscription) TryTxStatus(txID string) *TxStatusEvent {
	for {
		select {
		case ev, ok := <-sub.ch:
			if !ok {
				return nil
			}
			if st, isStatus := ev.(*TxStatusEvent); isStatus && st.TxID == txID {
				return st
			}
		default:
			return nil
		}
	}
}

// WaitTxStatus consumes the stream until the status event of txID
// arrives, the stream ends, or the context expires. Events for other
// transactions are discarded — commit-waiters hold a dedicated
// subscription.
func (sub *Subscription) WaitTxStatus(ctx context.Context, txID string) (*TxStatusEvent, error) {
	for {
		ev, err := sub.Recv(ctx)
		if err != nil {
			return nil, err
		}
		if st, isStatus := ev.(*TxStatusEvent); isStatus && st.TxID == txID {
			return st, nil
		}
	}
}

// Checkpoint tracks the next block a consumer needs, the durable cursor
// of the checkpointed-replay contract: Observe every processed event,
// persist Next across restarts, and resubscribe from Next.
type Checkpoint struct {
	mu   sync.Mutex
	next uint64
}

// NewCheckpoint starts a cursor at the given height.
func NewCheckpoint(next uint64) *Checkpoint { return &Checkpoint{next: next} }

// Observe advances the cursor past a processed block.
func (c *Checkpoint) Observe(blockNum uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if blockNum+1 > c.next {
		c.next = blockNum + 1
	}
}

// Next returns the height to resume from.
func (c *Checkpoint) Next() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.next
}
