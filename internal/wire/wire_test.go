package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/deliver"
	"repro/internal/gateway"
	"repro/internal/identity"
	"repro/internal/orderer"
)

// --- framing ---

func TestFrameRoundTrip(t *testing.T) {
	cases := []frame{
		{Type: ftRequest, Stream: 1, Payload: []byte(`{"method":"peer.info"}`)},
		{Type: ftResponse, Stream: 1 << 40, Payload: []byte(`{}`)},
		{Type: ftEvent, Stream: 7, Payload: bytes.Repeat([]byte("x"), 100_000)},
		{Type: ftCancel, Stream: 0, Payload: nil},
	}
	var buf bytes.Buffer
	for _, f := range cases {
		if err := writeFrame(&buf, f, DefaultMaxFrame); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	for i, want := range cases {
		got, err := readFrame(&buf, DefaultMaxFrame)
		if err != nil {
			t.Fatalf("frame %d: read: %v", i, err)
		}
		if got.Type != want.Type || got.Stream != want.Stream || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	encoded := appendFrame(nil, frame{Type: ftRequest, Stream: 3, Payload: []byte(`{"method":"x"}`)})
	// Flip every byte in turn; every corruption must surface as a typed
	// error (ErrCorrupt or ErrFrameTooLarge), never as a silent success
	// with altered content.
	for i := range encoded {
		mutated := append([]byte(nil), encoded...)
		mutated[i] ^= 0x01
		f, err := readFrame(bytes.NewReader(mutated), DefaultMaxFrame)
		if err == nil {
			t.Fatalf("flip byte %d: corruption not detected (frame %+v)", i, f)
		}
		// A flipped length byte can also shorten the stream (unexpected
		// EOF) — still a detected failure; everything else must carry
		// the typed sentinel.
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrFrameTooLarge) &&
			!errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
			t.Fatalf("flip byte %d: untyped error %v", i, err)
		}
	}
}

func TestFrameTooLarge(t *testing.T) {
	if err := writeFrame(&bytes.Buffer{}, frame{Type: ftRequest, Payload: make([]byte, 100)}, 10); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("write oversized: got %v", err)
	}
	encoded := appendFrame(nil, frame{Type: ftRequest, Payload: make([]byte, 100)})
	if _, err := readFrame(bytes.NewReader(encoded), 10); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("read oversized: got %v", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	encoded := appendFrame(nil, frame{Type: ftEvent, Stream: 9, Payload: []byte(`{"a":1}`)})
	for n := 0; n < len(encoded); n++ {
		if _, err := readFrame(bytes.NewReader(encoded[:n]), DefaultMaxFrame); err == nil {
			t.Fatalf("truncation at %d/%d bytes not detected", n, len(encoded))
		}
	}
}

// --- client/server RPC ---

// startServer runs a server with the given handlers on a free port.
func startServer(t *testing.T, opts ServerOptions, handlers map[string]Handler) *Server {
	t.Helper()
	s, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	for m, h := range handlers {
		s.Handle(m, h)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func dialT(t *testing.T, s *Server, opts ClientOptions) *Client {
	t.Helper()
	c, err := Dial(s.Addr().String(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

type echoBody struct {
	Msg string `json:"msg"`
}

func TestUnaryCall(t *testing.T) {
	s := startServer(t, ServerOptions{}, map[string]Handler{
		"echo": func(_ context.Context, body Body, _ *Sink) (any, error) {
			var in echoBody
			if err := body.Decode(&in); err != nil {
				return nil, err
			}
			return &echoBody{Msg: in.Msg + "!"}, nil
		},
	})
	c := dialT(t, s, ClientOptions{})
	var out echoBody
	if err := c.Call(context.Background(), "echo", &echoBody{Msg: "hi"}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Msg != "hi!" {
		t.Fatalf("echo: got %q", out.Msg)
	}
}

func TestConcurrentCallsMultiplex(t *testing.T) {
	s := startServer(t, ServerOptions{}, map[string]Handler{
		"echo": func(_ context.Context, body Body, _ *Sink) (any, error) {
			var in echoBody
			body.Decode(&in)
			return &in, nil
		},
	})
	c := dialT(t, s, ClientOptions{})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("msg-%d", i)
			var out echoBody
			if err := c.Call(context.Background(), "echo", &echoBody{Msg: want}, &out); err != nil {
				errs <- err
				return
			}
			if out.Msg != want {
				errs <- fmt.Errorf("call %d: got %q", i, out.Msg)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestUnknownMethod(t *testing.T) {
	s := startServer(t, ServerOptions{}, nil)
	c := dialT(t, s, ClientOptions{})
	err := c.Call(context.Background(), "nope", nil, nil)
	if err == nil {
		t.Fatal("unknown method succeeded")
	}
}

func TestDeadlinePropagation(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := startServer(t, ServerOptions{}, map[string]Handler{
		"slow": func(ctx context.Context, _ Body, _ *Sink) (any, error) {
			// The server-side context must carry the client's deadline.
			if _, ok := ctx.Deadline(); !ok {
				return nil, fmt.Errorf("no deadline on server context")
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-release:
				return nil, fmt.Errorf("handler outlived the deadline")
			}
		},
	})
	c := dialT(t, s, ClientOptions{})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	err := c.Call(ctx, "slow", nil, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want deadline exceeded", err)
	}
}

func TestCancelAbortsServerHandler(t *testing.T) {
	started := make(chan struct{}, 1)
	aborted := make(chan error, 1)
	s := startServer(t, ServerOptions{}, map[string]Handler{
		"wait": func(ctx context.Context, _ Body, _ *Sink) (any, error) {
			started <- struct{}{}
			<-ctx.Done()
			aborted <- ctx.Err()
			return nil, ctx.Err()
		},
	})
	c := dialT(t, s, ClientOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.Call(ctx, "wait", nil, nil) }()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("client: got %v", err)
	}
	select {
	case err := <-aborted:
		if err == nil {
			t.Fatal("server handler not canceled")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server handler never observed the cancellation")
	}
}

// --- streams ---

func TestStreamDeliversEventsInOrder(t *testing.T) {
	const events = 50
	s := startServer(t, ServerOptions{}, map[string]Handler{
		"count": func(ctx context.Context, _ Body, sink *Sink) (any, error) {
			if err := sink.Ack(); err != nil {
				return nil, err
			}
			for i := 0; i < events; i++ {
				ev := event{Block: &deliver.BlockEvent{Number: uint64(i)}}
				if err := sink.Send(ev); err != nil {
					return nil, err
				}
			}
			return nil, nil
		},
	})
	c := dialT(t, s, ClientOptions{})
	stream, err := c.Stream(context.Background(), "count", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	next := uint64(0)
	for ev := range stream.Events() {
		be, ok := ev.(*deliver.BlockEvent)
		if !ok {
			t.Fatalf("unexpected event %T", ev)
		}
		if be.Number != next {
			t.Fatalf("got block %d, want %d", be.Number, next)
		}
		next++
	}
	if next != events {
		t.Fatalf("received %d events, want %d", next, events)
	}
	if err := stream.Err(); err != nil {
		t.Fatalf("stream err: %v", err)
	}
}

func TestStreamErrorSurfacesInErr(t *testing.T) {
	boom := errors.New("boom")
	s := startServer(t, ServerOptions{}, map[string]Handler{
		"fail": func(_ context.Context, _ Body, sink *Sink) (any, error) {
			if err := sink.Ack(); err != nil {
				return nil, err
			}
			return nil, boom
		},
	})
	c := dialT(t, s, ClientOptions{})
	stream, err := c.Stream(context.Background(), "fail", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	for range stream.Events() {
	}
	if err := stream.Err(); err == nil || err.Error() == "" {
		t.Fatalf("stream err: %v, want the handler's error", err)
	}
}

func TestStreamRejectedBeforeAck(t *testing.T) {
	s := startServer(t, ServerOptions{}, map[string]Handler{
		"deny": func(_ context.Context, _ Body, _ *Sink) (any, error) {
			return nil, errors.New("denied")
		},
	})
	c := dialT(t, s, ClientOptions{})
	if _, err := c.Stream(context.Background(), "deny", nil); err == nil {
		t.Fatal("stream open succeeded, want the handler's rejection")
	}
}

func TestStreamClientCloseCancelsHandler(t *testing.T) {
	canceled := make(chan struct{})
	s := startServer(t, ServerOptions{}, map[string]Handler{
		"live": func(ctx context.Context, _ Body, sink *Sink) (any, error) {
			if err := sink.Ack(); err != nil {
				return nil, err
			}
			<-ctx.Done()
			close(canceled)
			return nil, ctx.Err()
		},
	})
	c := dialT(t, s, ClientOptions{})
	stream, err := c.Stream(context.Background(), "live", nil)
	if err != nil {
		t.Fatal(err)
	}
	stream.Close()
	select {
	case <-canceled:
	case <-time.After(5 * time.Second):
		t.Fatal("server stream handler not canceled by client Close")
	}
}

// --- error code round-trips ---

func TestSentinelErrorsSurviveTheWire(t *testing.T) {
	sentinelErrs := []error{
		gateway.ErrNoEndorsers,
		gateway.ErrEndorsementMismatch,
		gateway.ErrBadEndorserSignature,
		gateway.ErrCommitStatusUnavailable,
		orderer.ErrStopped,
		deliver.ErrSlowConsumer,
		context.DeadlineExceeded,
	}
	s := startServer(t, ServerOptions{}, map[string]Handler{
		"err": func(_ context.Context, body Body, _ *Sink) (any, error) {
			var idx int
			body.Decode(&idx)
			return nil, fmt.Errorf("wrapped: %w", sentinelErrs[idx])
		},
	})
	c := dialT(t, s, ClientOptions{})
	for i, want := range sentinelErrs {
		err := c.Call(context.Background(), "err", i, nil)
		if !errors.Is(err, want) {
			t.Errorf("sentinel %v: got %v", want, err)
		}
	}
}

func TestOverloadedErrorKeepsRetryHint(t *testing.T) {
	s := startServer(t, ServerOptions{}, map[string]Handler{
		"shed": func(_ context.Context, _ Body, _ *Sink) (any, error) {
			return nil, &gateway.OverloadedError{RetryAfter: 750 * time.Millisecond}
		},
	})
	c := dialT(t, s, ClientOptions{})
	err := c.Call(context.Background(), "shed", nil, nil)
	var oe *gateway.OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("got %v, want OverloadedError", err)
	}
	if oe.RetryAfter != 750*time.Millisecond {
		t.Fatalf("retry hint: got %v, want 750ms", oe.RetryAfter)
	}
}

// --- connection lifecycle ---

func TestCallsFailAfterServerClose(t *testing.T) {
	s := startServer(t, ServerOptions{}, map[string]Handler{
		"echo": func(_ context.Context, body Body, _ *Sink) (any, error) {
			var in echoBody
			if err := body.Decode(&in); err != nil {
				return nil, err
			}
			return &in, nil
		},
	})
	c := dialT(t, s, ClientOptions{})
	if err := c.Call(context.Background(), "echo", &echoBody{Msg: "a"}, nil); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// The dead connection must fail calls, not hang them.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Call(ctx, "echo", &echoBody{Msg: "b"}, nil); err == nil {
		t.Fatal("call after server close succeeded")
	}
}

// --- TLS ---

func testIdentity(t *testing.T, subject string) *identity.Identity {
	t.Helper()
	ca, err := identity.NewCA("org1")
	if err != nil {
		t.Fatal(err)
	}
	id, err := ca.Issue(subject, identity.RolePeer)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestTLSPinnedKey(t *testing.T) {
	serverID := testIdentity(t, "peer0.org1")
	clientID := testIdentity(t, "client0.org1")
	s := startServer(t, ServerOptions{Identity: serverID}, map[string]Handler{
		"echo": func(_ context.Context, body Body, _ *Sink) (any, error) {
			var in echoBody
			if err := body.Decode(&in); err != nil {
				return nil, err
			}
			return &in, nil
		},
	})
	c := dialT(t, s, ClientOptions{Identity: clientID, ServerKey: serverID.Cert.PubKey})
	var out echoBody
	if err := c.Call(context.Background(), "echo", &echoBody{Msg: "secure"}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Msg != "secure" {
		t.Fatalf("echo over TLS: got %q", out.Msg)
	}
}

func TestTLSWrongPinnedKeyRejected(t *testing.T) {
	serverID := testIdentity(t, "peer0.org1")
	imposter := testIdentity(t, "peer0.org1") // same name, different key
	clientID := testIdentity(t, "client0.org1")
	s := startServer(t, ServerOptions{Identity: serverID}, map[string]Handler{
		"echo": func(_ context.Context, body Body, _ *Sink) (any, error) {
			var in echoBody
			if err := body.Decode(&in); err != nil {
				return nil, err
			}
			return &in, nil
		},
	})
	c, err := Dial(s.Addr().String(), ClientOptions{Identity: clientID, ServerKey: imposter.Cert.PubKey})
	if err == nil {
		// The handshake may complete lazily; the first call must fail.
		defer c.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if cerr := c.Call(ctx, "echo", &echoBody{Msg: "x"}, nil); cerr == nil {
			t.Fatal("call over mis-pinned TLS succeeded")
		}
	}
}

func TestPlaintextClientAgainstTLSServerFails(t *testing.T) {
	serverID := testIdentity(t, "peer0.org1")
	s := startServer(t, ServerOptions{Identity: serverID}, nil)
	c, err := Dial(s.Addr().String(), ClientOptions{})
	if err != nil {
		return // dial-time failure is fine too
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if cerr := c.Call(ctx, "anything", nil, nil); cerr == nil {
		t.Fatal("plaintext call against TLS server succeeded")
	}
}

// --- review regressions ---

// TestEventStreamCloseRacesPush: finish closes the event channel while
// pushes are in flight; both must serialize on the stream's mutex or
// push panics on the closed channel.
func TestEventStreamCloseRacesPush(t *testing.T) {
	for i := 0; i < 200; i++ {
		es := newEventStream(nil, "test")
		done := make(chan struct{})
		go func() {
			defer close(done)
			for j := 0; j < 500; j++ {
				if !es.push(&deliver.BlockEvent{Number: uint64(j)}) {
					return
				}
			}
		}()
		es.finish(nil)
		<-done
	}
}

// TestOversizedResponseSurfacesError: a response the connection cannot
// carry must come back as an error, not leave Call blocked forever.
func TestOversizedResponseSurfacesError(t *testing.T) {
	big := make([]byte, 8<<10)
	for i := range big {
		big[i] = 'x'
	}
	s := startServer(t, ServerOptions{MaxFrame: 1024}, map[string]Handler{
		"big": func(_ context.Context, _ Body, _ *Sink) (any, error) {
			return &echoBody{Msg: string(big)}, nil
		},
	})
	c := dialT(t, s, ClientOptions{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := c.Call(ctx, "big", nil, &echoBody{})
	if err == nil {
		t.Fatal("oversized response succeeded")
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("call hung until deadline instead of failing fast: %v", err)
	}
}

// TestStreamIDReuseDropsConnection: a client reusing a live stream ID
// would orphan the first handler's cancel entry; the server must drop
// the connection instead of serving it.
func TestStreamIDReuseDropsConnection(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := startServer(t, ServerOptions{}, map[string]Handler{
		"wait": func(ctx context.Context, _ Body, _ *Sink) (any, error) {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return nil, nil
		},
	})
	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	cn := newConn(nc, DefaultMaxFrame)
	payload, err := json.Marshal(&request{Method: "wait"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := cn.send(frame{Type: ftRequest, Stream: 7, Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	for {
		_, rerr := cn.read()
		if rerr == nil {
			continue
		}
		var nerr net.Error
		if errors.As(rerr, &nerr) && nerr.Timeout() {
			t.Fatal("server kept the connection after a live stream ID was reused")
		}
		return // dropped, as required
	}
}

// TestEncodeErrorPrecedenceDeterministic: an error chain matching more
// than one sentinel must always encode to the same code (the package
// sentinel, not the generic context error).
func TestEncodeErrorPrecedenceDeterministic(t *testing.T) {
	err := fmt.Errorf("stream: %w", errors.Join(deliver.ErrClosed, context.Canceled))
	for i := 0; i < 100; i++ {
		if we := encodeError(err); we.Code != codeDeliverClosed {
			t.Fatalf("iteration %d: code %q, want %q", i, we.Code, codeDeliverClosed)
		}
	}
}
