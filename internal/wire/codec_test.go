package wire

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/deliver"
	"repro/internal/ledger"
	"repro/internal/rwset"
	"repro/internal/service"
	"repro/internal/statedb"
)

// codecSampleBodies is one fully-populated instance of every type the
// binary codec knows, exercising nested structs, maps, nil-vs-empty
// slices and negative varints.
func codecSampleBodies() []any {
	prop := &ledger.Proposal{
		TxID: "tx9", ChannelID: "c1", Chaincode: "asset", Function: "set",
		Args: []string{"k", "v"}, Creator: []byte("cert"), Nonce: []byte{1, 2, 3},
	}
	ccEvent := &ledger.ChaincodeEvent{Name: "transfer", Payload: []byte("amount=5")}
	return []any{
		&request{Method: "peer.endorse", Deadline: time.Now().Add(time.Second).UnixNano(), Body: []byte(`{"x":1}`)},
		&request{Method: "peer.info"},
		&response{Err: &WireError{Code: codeOverloaded, Message: "shed", RetryAfterMs: 250}, More: true},
		&response{Body: []byte(`{"x":1}`)},
		&event{Block: &deliver.BlockEvent{Number: 4, Replayed: true}},
		&event{Status: &deliver.TxStatusEvent{
			BlockNum: 4, TxIndex: -1, TxID: "tx9", Code: ledger.MVCCConflict,
			Detail: "conflict on k", MissingCollections: []string{"pdc1", "pdc2"},
			ChaincodeEvent: ccEvent, Replayed: true,
		}},
		&event{},
		&event{Chunk: &SnapshotChunkEvent{Index: 2, Name: "chunk-000002.snap", Data: []byte("PDCSNAP1...")}},
		&snapshotMetaResponse{Export: 5, Manifest: []byte(`{"format":1}`)},
		&snapshotChunksRequest{Export: 5},
		&endorseRequest{Proposal: prop, Transient: map[string][]byte{"pw": []byte("s3cret"), "a": nil}},
		&subscribeRequest{From: 7, Live: true},
		&pvtRequest{TxID: "tx9", Collection: "pdc1"},
		&infoResponse{Name: "peer0.org1", Org: "org1", Channel: "c1", Height: 42, StateHash: "ab12", Base: 17},
		&orderRequest{Tx: []byte(`{"tx_id":"tx9"}`)},
		&txIDRequest{TxID: "tx9"},
		&inPendingResponse{Pending: true},
		&blocksRequest{From: 9},
		&evaluateResponse{Payload: []byte("answer")},
		&submitAsyncResponse{Handle: 3, TxID: "tx9"},
		&handleRequest{Handle: 3},
		&rwset.TxPvtRWSet{TxID: "tx9", CollSets: []rwset.CollPvtRWSet{{
			Collection: "pdc1",
			Reads:      []rwset.KVRead{{Key: "k", Version: statedb.Version(11)}},
			Writes:     []rwset.KVWrite{{Key: "k", Value: []byte("v"), IsDelete: false}, {Key: "old", IsDelete: true}},
		}}},
		&rwset.CollPvtRWSet{Collection: "pdc2", Writes: []rwset.KVWrite{{Key: "k2", Value: []byte("v2")}}},
		&service.InvokeRequest{
			Channel: "c1", Chaincode: "asset", Function: "get", Args: []string{"k"},
			Transient: map[string][]byte{"pw": []byte("s3cret")},
		},
		&service.SubmitResult{
			TxID: "tx9", Payload: []byte("ok"), Code: ledger.Valid, BlockNum: 4,
			Event: ccEvent, MissingCollections: []string{"pdc1"}, CommitWait: 125 * time.Millisecond,
		},
		&ledger.ProposalResponse{
			Payload: []byte("prp"), PlainPayload: []byte("plain"),
			Response:    ledger.Response{Status: ledger.StatusError, Message: "boom", Payload: []byte("why")},
			Endorsement: ledger.Endorsement{Endorser: []byte("cert"), Signature: []byte("sig")},
		},
	}
}

// TestBinaryCodecMatchesJSON pins the equivalence contract on
// deterministic, fully-populated values (FuzzCodecEquivalence explores
// the same property from fuzzed inputs).
func TestBinaryCodecMatchesJSON(t *testing.T) {
	for _, v := range codecSampleBodies() {
		checkCodecEquivalence(t, v)
	}
}

// TestBinaryCodecTypedNilPointer: peer.pvt legitimately returns a typed
// nil *CollPvtRWSet ("this peer has no such private data"); the binary
// codec must round-trip it to nil, exactly as JSON's null does.
func TestBinaryCodecTypedNilPointer(t *testing.T) {
	data, ok := binMarshal((*rwset.CollPvtRWSet)(nil))
	if !ok {
		t.Fatal("typed nil *CollPvtRWSet not binary-marshalable")
	}
	out := &rwset.CollPvtRWSet{Collection: "poisoned"}
	if ok, err := binUnmarshal(data, &out); !ok || err != nil {
		t.Fatalf("unmarshal: ok=%v err=%v", ok, err)
	}
	if out != nil {
		t.Fatalf("typed nil decoded to %+v, want nil", out)
	}
}

// TestBinaryCodecTruncationSafe: every strict prefix of a valid binary
// encoding must fail with an error — never panic, never decode
// "successfully" into partial data. The codec is positional, so any
// truncation starves a later field.
func TestBinaryCodecTruncationSafe(t *testing.T) {
	for _, v := range codecSampleBodies() {
		full, ok := binMarshal(v)
		if !ok {
			t.Fatalf("no binary codec for %T", v)
		}
		for n := 0; n < len(full); n++ {
			fresh := newZero(v)
			if ok, err := binUnmarshal(full[:n], fresh); ok && err == nil {
				t.Fatalf("%T: prefix %d/%d decoded without error", v, n, len(full))
			}
		}
		// Trailing garbage must also be rejected: the encoding is
		// canonical, like the framing layer.
		extended := append(append([]byte{}, full...), 0xFF)
		if ok, err := binUnmarshal(extended, newZero(v)); ok && err == nil {
			t.Fatalf("%T: trailing byte accepted", v)
		}
	}
}

// TestMarshalBodyFallsBackToJSON: a type the binary codec doesn't know
// (tests, future additions) silently degrades the frame to JSON and is
// counted, rather than failing the call.
func TestMarshalBodyFallsBackToJSON(t *testing.T) {
	type unknown struct {
		A int `json:"a"`
	}
	before := stats.jsonFallbacks.Load()
	data, c, err := marshalBody(codecBinary, &unknown{A: 7})
	if err != nil {
		t.Fatal(err)
	}
	if c != codecJSON {
		t.Fatalf("codec = %d, want JSON fallback", c)
	}
	if !bytes.Equal(data, []byte(`{"a":7}`)) {
		t.Fatalf("fallback body = %q", data)
	}
	if got := stats.jsonFallbacks.Load(); got != before+1 {
		t.Fatalf("jsonFallbacks = %d, want %d", got, before+1)
	}
	var out unknown
	if err := unmarshalBody(c, data, &out); err != nil || out.A != 7 {
		t.Fatalf("fallback round-trip: %+v, %v", out, err)
	}
	// The binary decoder must refuse the type rather than misparse it.
	if err := unmarshalBody(codecBinary, data, &out); err == nil {
		t.Fatal("binary unmarshal of unknown type succeeded")
	}
}

// TestBinaryBlockKeepsCanonicalTxBytes: transactions travel inside
// binary blocks as their memoized canonical serialization, so a decoded
// block re-derives the identical data hash — the property that keeps
// state hashes byte-identical across processes.
func TestBinaryBlockKeepsCanonicalTxBytes(t *testing.T) {
	tx1 := &ledger.Transaction{
		TxID: "a", ChannelID: "c1", Creator: []byte("cert"),
		Proposal: &ledger.Proposal{
			TxID: "a", ChannelID: "c1", Chaincode: "cc", Function: "f",
			Args: []string{"k", "v"}, Creator: []byte("cert"), Nonce: []byte{1, 2},
		},
		ResponsePayload: []byte("pay"),
		Endorsements:    []ledger.Endorsement{{Endorser: []byte("cert"), Signature: []byte("sig")}},
	}
	tx2 := &ledger.Transaction{TxID: "b", ChannelID: "c1", Creator: []byte("cert"), ResponsePayload: []byte("pay")}
	block := ledger.NewBlock(3, []byte{0xAA}, []*ledger.Transaction{tx1, tx2})
	block.Metadata.ValidationFlags = []ledger.ValidationCode{ledger.Valid, ledger.MVCCConflict}

	ev := &event{Block: &deliver.BlockEvent{Number: 3, Block: block, Replayed: true}}
	data, ok := binMarshal(ev)
	if !ok {
		t.Fatal("event not binary-marshalable")
	}
	var got event
	if ok, err := binUnmarshal(data, &got); !ok || err != nil {
		t.Fatalf("unmarshal: ok=%v err=%v", ok, err)
	}
	gb := got.Block.Block
	if gb == nil {
		t.Fatal("decoded event lost its block")
	}
	for i, tx := range gb.Transactions {
		if !bytes.Equal(tx.Bytes(), block.Transactions[i].Bytes()) {
			t.Fatalf("tx %d: canonical bytes changed across the binary codec", i)
		}
	}
	if !gb.VerifyDataHash() {
		t.Fatal("decoded block fails VerifyDataHash")
	}
	if !bytes.Equal(gb.Header.DataHash, block.Header.DataHash) {
		t.Fatal("data hash changed across the binary codec")
	}
	if len(gb.Metadata.ValidationFlags) != 2 || gb.Metadata.ValidationFlags[1] != ledger.MVCCConflict {
		t.Fatalf("validation flags lost: %v", gb.Metadata.ValidationFlags)
	}
}

// TestBufPoolSizeClasses pins the pool's ownership-safety basics: a
// buffer obtained for n bytes has the capacity asked for, and recycled
// buffers come back zero-length.
func TestBufPoolSizeClasses(t *testing.T) {
	for _, n := range []int{1, 100, 4 << 10, 5 << 10, 64 << 10, 1 << 20, 3 << 20} {
		b := getBuf(n)
		if len(b) != 0 {
			t.Fatalf("getBuf(%d): len = %d, want 0", n, len(b))
		}
		if cap(b) < n {
			t.Fatalf("getBuf(%d): cap = %d", n, cap(b))
		}
		b = append(b, make([]byte, n)...)
		putBuf(b)
	}
	// Oversized buffers are dropped, never pooled (bounded memory).
	putBuf(make([]byte, maxPooledBuf+1))
}

// newZero returns a fresh zero-valued instance with v's type, usable as
// a binUnmarshal target.
func newZero(v any) any {
	switch v.(type) {
	case *request:
		return &request{}
	case *response:
		return &response{}
	case *event:
		return &event{}
	case *endorseRequest:
		return &endorseRequest{}
	case *subscribeRequest:
		return &subscribeRequest{}
	case *pvtRequest:
		return &pvtRequest{}
	case *infoResponse:
		return &infoResponse{}
	case *orderRequest:
		return &orderRequest{}
	case *txIDRequest:
		return &txIDRequest{}
	case *inPendingResponse:
		return &inPendingResponse{}
	case *blocksRequest:
		return &blocksRequest{}
	case *evaluateResponse:
		return &evaluateResponse{}
	case *submitAsyncResponse:
		return &submitAsyncResponse{}
	case *handleRequest:
		return &handleRequest{}
	case *snapshotMetaResponse:
		return &snapshotMetaResponse{}
	case *snapshotChunksRequest:
		return &snapshotChunksRequest{}
	case *rwset.TxPvtRWSet:
		return &rwset.TxPvtRWSet{}
	case *rwset.CollPvtRWSet:
		return &rwset.CollPvtRWSet{}
	case *service.InvokeRequest:
		return &service.InvokeRequest{}
	case *service.SubmitResult:
		return &service.SubmitResult{}
	case *ledger.ProposalResponse:
		return &ledger.ProposalResponse{}
	}
	panic("newZero: unknown type")
}

// TestParseCodec pins the exported codec selection surface.
func TestParseCodec(t *testing.T) {
	cases := []struct {
		in   string
		want Codec
		ok   bool
	}{
		{"", CodecBinary, true},
		{"binary", CodecBinary, true},
		{"json", CodecJSON, true},
		{"protobuf", "", false},
	}
	for _, c := range cases {
		got, err := ParseCodec(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Fatalf("ParseCodec(%q) = %q, %v", c.in, got, err)
		}
		if !c.ok && err == nil {
			t.Fatalf("ParseCodec(%q) accepted", c.in)
		}
	}
	if CodecBinary.id() != codecBinary || CodecJSON.id() != codecJSON {
		t.Fatal("codec ids must map onto the wire version bytes")
	}
}
