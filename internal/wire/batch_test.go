package wire

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/deliver"
)

// codecCases runs a subtest per payload codec, so every batching and
// ownership property is pinned for both encodings.
func codecCases(t *testing.T, fn func(t *testing.T, codec Codec)) {
	for _, c := range []Codec{CodecBinary, CodecJSON} {
		t.Run(string(c), func(t *testing.T) { fn(t, c) })
	}
}

// TestBatchedStreamDeliversInOrder: events sent through SendBatch (in
// full and partial batches) arrive in order and intact, on both codecs.
func TestBatchedStreamDeliversInOrder(t *testing.T) {
	codecCases(t, func(t *testing.T, codec Codec) {
		const events = 101 // 3 full batches of 32 + a remainder of 5
		s := startServer(t, ServerOptions{}, map[string]Handler{
			"count": func(ctx context.Context, _ Body, sink *Sink) (any, error) {
				if err := sink.Ack(); err != nil {
					return nil, err
				}
				batch := make([]event, 0, eventBatchMax)
				for i := 0; i < events; i++ {
					batch = append(batch, event{Status: &deliver.TxStatusEvent{
						BlockNum: uint64(i), TxID: fmt.Sprintf("tx-%d", i),
					}})
					if len(batch) == eventBatchMax {
						if err := sink.SendBatch(batch); err != nil {
							return nil, err
						}
						batch = batch[:0]
					}
				}
				return nil, sink.SendBatch(batch)
			},
		})
		c := dialT(t, s, ClientOptions{Codec: codec})
		stream, err := c.Stream(context.Background(), "count", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer stream.Close()
		next := uint64(0)
		for ev := range stream.Events() {
			se, ok := ev.(*deliver.TxStatusEvent)
			if !ok {
				t.Fatalf("unexpected event %T", ev)
			}
			if se.BlockNum != next || se.TxID != fmt.Sprintf("tx-%d", next) {
				t.Fatalf("got event (%d, %s), want %d", se.BlockNum, se.TxID, next)
			}
			next++
		}
		if next != events {
			t.Fatalf("received %d events, want %d", next, events)
		}
		if err := stream.Err(); err != nil {
			t.Fatalf("stream err: %v", err)
		}
	})
}

// TestSlowConsumerEvictedUnderBatches: a consumer that stops draining
// while the server floods multi-event frames must be evicted with
// ErrSlowConsumer, and the eviction's ftCancel must reach the server
// handler as a context cancellation.
func TestSlowConsumerEvictedUnderBatches(t *testing.T) {
	codecCases(t, func(t *testing.T, codec Codec) {
		canceled := make(chan struct{})
		s := startServer(t, ServerOptions{}, map[string]Handler{
			"flood": func(ctx context.Context, _ Body, sink *Sink) (any, error) {
				if err := sink.Ack(); err != nil {
					return nil, err
				}
				var n uint64
				batch := make([]event, eventBatchMax)
				for {
					if ctx.Err() != nil {
						close(canceled)
						return nil, ctx.Err()
					}
					for i := range batch {
						batch[i] = event{Status: &deliver.TxStatusEvent{BlockNum: n}}
						n++
					}
					if err := sink.SendBatch(batch); err != nil {
						return nil, err
					}
				}
			},
		})
		c := dialT(t, s, ClientOptions{Codec: codec})
		stream, err := c.Stream(context.Background(), "flood", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer stream.Close()
		// Do not drain at all: the read loop fills the stream buffer,
		// the next push fails, and the client evicts the stream. Poll
		// Err until the eviction lands.
		deadline := time.Now().Add(10 * time.Second)
		for stream.Err() == nil {
			if time.Now().After(deadline) {
				t.Fatal("slow consumer never evicted")
			}
			time.Sleep(time.Millisecond)
		}
		if err := stream.Err(); !errors.Is(err, deliver.ErrSlowConsumer) {
			t.Fatalf("stream err = %v, want ErrSlowConsumer", err)
		}
		select {
		case <-canceled:
		case <-time.After(10 * time.Second):
			t.Fatal("server handler never observed the eviction's cancel")
		}
		// The buffered backlog still drains, in order, after eviction.
		next := uint64(0)
		for ev := range stream.Events() {
			se := ev.(*deliver.TxStatusEvent)
			if se.BlockNum != next {
				t.Fatalf("backlog out of order: got %d, want %d", se.BlockNum, next)
			}
			next++
		}
		if next == 0 {
			t.Fatal("no buffered events drained after eviction")
		}
	})
}

// TestCancelStopsBatchedStream: a client Close mid-flood (ftCancel)
// stops a stream that is emitting multi-event frames, and the abandoned
// batch frames already in flight are dropped cleanly.
func TestCancelStopsBatchedStream(t *testing.T) {
	codecCases(t, func(t *testing.T, codec Codec) {
		canceled := make(chan struct{})
		s := startServer(t, ServerOptions{}, map[string]Handler{
			"flood": func(ctx context.Context, _ Body, sink *Sink) (any, error) {
				if err := sink.Ack(); err != nil {
					return nil, err
				}
				var n uint64
				batch := make([]event, 8)
				for {
					if ctx.Err() != nil {
						close(canceled)
						return nil, ctx.Err()
					}
					for i := range batch {
						batch[i] = event{Block: &deliver.BlockEvent{Number: n}}
						n++
					}
					if err := sink.SendBatch(batch); err != nil {
						return nil, err
					}
					// Pace the flood just enough that a draining consumer
					// never overflows — this test is about cancel, not
					// eviction.
					time.Sleep(100 * time.Microsecond)
				}
			},
		})
		c := dialT(t, s, ClientOptions{Codec: codec})
		stream, err := c.Stream(context.Background(), "flood", nil)
		if err != nil {
			t.Fatal(err)
		}
		// Drain continuously; hang up mid-flood once batches have flowed.
		enough := make(chan struct{})
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			seen := 0
			for range stream.Events() {
				if seen++; seen == 20 {
					close(enough)
				}
			}
		}()
		select {
		case <-enough:
		case <-time.After(10 * time.Second):
			t.Fatal("no events flowed")
		}
		stream.Close()
		<-drained
		select {
		case <-canceled:
		case <-time.After(10 * time.Second):
			t.Fatal("server handler not canceled by client Close")
		}
		if err := stream.Err(); err != nil {
			t.Fatalf("closed stream err = %v, want nil", err)
		}
		// The connection must remain usable for other traffic: batch
		// frames for the dead stream are dropped, not fatal.
		if _, err := c.Stream(context.Background(), "flood", nil); err != nil {
			t.Fatalf("connection unusable after cancel: %v", err)
		}
	})
}

// TestPooledBufferOwnershipStress hammers one connection with
// concurrent unary calls of varied payload sizes plus live batched
// streams. Run under -race (make check does), it verifies the explicit
// ownership hand-offs of pooled buffers across send queues, read loops
// and handler goroutines: any double-release or use-after-release shows
// up as corrupted echoes or a race report.
func TestPooledBufferOwnershipStress(t *testing.T) {
	s := startServer(t, ServerOptions{}, map[string]Handler{
		"echo": func(_ context.Context, body Body, _ *Sink) (any, error) {
			var req orderRequest
			if err := body.Decode(&req); err != nil {
				return nil, err
			}
			return &evaluateResponse{Payload: req.Tx}, nil
		},
		"ticker": func(ctx context.Context, _ Body, sink *Sink) (any, error) {
			if err := sink.Ack(); err != nil {
				return nil, err
			}
			var n uint64
			batch := make([]event, 4)
			for ctx.Err() == nil {
				for i := range batch {
					batch[i] = event{Status: &deliver.TxStatusEvent{BlockNum: n, TxID: "t"}}
					n++
				}
				if err := sink.SendBatch(batch); err != nil {
					return nil, err
				}
			}
			return nil, ctx.Err()
		},
	})
	for _, codec := range []Codec{CodecBinary, CodecJSON} {
		c := dialT(t, s, ClientOptions{Codec: codec})
		ctx, cancel := context.WithCancel(context.Background())
		stream, err := c.Stream(ctx, "ticker", nil)
		if err != nil {
			t.Fatal(err)
		}
		var drained sync.WaitGroup
		drained.Add(1)
		go func() {
			defer drained.Done()
			last := int64(-1)
			for ev := range stream.Events() {
				se := ev.(*deliver.TxStatusEvent)
				if int64(se.BlockNum) <= last {
					t.Errorf("stream went backwards: %d after %d", se.BlockNum, last)
					return
				}
				last = int64(se.BlockNum)
			}
		}()

		const workers = 16
		const callsPerWorker = 60
		var wg sync.WaitGroup
		errs := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < callsPerWorker; i++ {
					// Sizes straddle the pool's size classes, including
					// zero-length and just-past-a-class boundaries.
					size := (w*callsPerWorker + i) * 131 % (72 << 10)
					payload := bytes.Repeat([]byte{byte(w), byte(i)}, size/2)
					var out evaluateResponse
					if err := c.Call(context.Background(), "echo", &orderRequest{Tx: payload}, &out); err != nil {
						errs <- fmt.Errorf("worker %d call %d: %w", w, i, err)
						return
					}
					if !bytes.Equal(out.Payload, payload) {
						errs <- fmt.Errorf("worker %d call %d: echo corrupted (%d bytes in, %d out)", w, i, len(payload), len(out.Payload))
						return
					}
				}
			}(w)
		}
		wg.Wait()
		cancel()
		stream.Close()
		drained.Wait()
		c.Close()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	}
}
