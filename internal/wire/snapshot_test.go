package wire

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/snapshot"
)

// writeTestArtifact builds a small multi-chunk snapshot artifact on
// disk and returns its directory.
func writeTestArtifact(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "snap")
	w, err := snapshot.NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	w.SetChunkBytes(512)
	for i := 0; i < 40; i++ {
		err := w.Add(snapshot.Record{
			Kind:      snapshot.KindState,
			Namespace: "asset",
			Key:       fmt.Sprintf("key-%03d", i),
			Value:     []byte(fmt.Sprintf("value-%03d", i)),
			Version:   uint64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Finish(9, []byte("prevhash"), []byte("statehash")); err != nil {
		t.Fatal(err)
	}
	return dir
}

// serveArtifact registers peer.snapshot.meta / peer.snapshot.chunks
// handlers backed by a fixed on-disk artifact — the transport contract
// without a live peer behind it.
func serveArtifact(t *testing.T, dir string) *Server {
	t.Helper()
	const exportID = 7
	return startServer(t, ServerOptions{}, map[string]Handler{
		"peer.snapshot.meta": func(_ context.Context, _ Body, _ *Sink) (any, error) {
			raw, err := os.ReadFile(filepath.Join(dir, snapshot.ManifestName))
			if err != nil {
				return nil, err
			}
			return &snapshotMetaResponse{Export: exportID, Manifest: raw}, nil
		},
		"peer.snapshot.chunks": func(ctx context.Context, body Body, sink *Sink) (any, error) {
			var req snapshotChunksRequest
			if err := body.Decode(&req); err != nil {
				return nil, err
			}
			if req.Export != exportID {
				return nil, fmt.Errorf("unknown export %d", req.Export)
			}
			m, err := snapshot.ReadManifest(dir)
			if err != nil {
				return nil, err
			}
			if err := sink.Ack(); err != nil {
				return nil, err
			}
			for i, ci := range m.Chunks {
				data, err := os.ReadFile(filepath.Join(dir, ci.Name))
				if err != nil {
					return nil, err
				}
				ev := event{Chunk: &SnapshotChunkEvent{Index: uint64(i), Name: ci.Name, Data: data}}
				if err := sink.SendBatch([]event{ev}); err != nil {
					return nil, err
				}
			}
			return nil, nil
		},
	})
}

// TestFetchSnapshotRoundTrip downloads an artifact over the wire with
// both codecs and proves the fetched copy verifies and loads exactly
// like the original — same snapshot hash, same records.
func TestFetchSnapshotRoundTrip(t *testing.T) {
	src := writeTestArtifact(t)
	wantM, wantRecs, err := snapshot.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantM.Chunks) < 2 {
		t.Fatalf("want a multi-chunk artifact, got %d chunks", len(wantM.Chunks))
	}
	s := serveArtifact(t, src)

	for _, codec := range []Codec{CodecJSON, CodecBinary} {
		t.Run(string(codec), func(t *testing.T) {
			c := dialT(t, s, ClientOptions{Codec: codec})
			p := &PeerClient{c: c}
			dst := filepath.Join(t.TempDir(), "fetched")
			m, err := p.FetchSnapshot(context.Background(), dst)
			if err != nil {
				t.Fatal(err)
			}
			if m.SnapshotHash != wantM.SnapshotHash {
				t.Fatalf("manifest hash changed in flight: %s != %s", m.SnapshotHash, wantM.SnapshotHash)
			}
			gotM, gotRecs, err := snapshot.Load(dst)
			if err != nil {
				t.Fatalf("fetched artifact fails verification: %v", err)
			}
			if gotM.SnapshotHash != wantM.SnapshotHash || len(gotRecs) != len(wantRecs) {
				t.Fatalf("fetched artifact differs: hash %s records %d, want %s / %d",
					gotM.SnapshotHash, len(gotRecs), wantM.SnapshotHash, len(wantRecs))
			}
			// No .partial residue after a successful download.
			if _, err := os.Stat(dst + ".partial"); !os.IsNotExist(err) {
				t.Fatalf(".partial staging dir left behind (stat err %v)", err)
			}
		})
	}
}

// TestFetchSnapshotRefusesExistingDir: the destination must not exist —
// fetch never overwrites a prior artifact.
func TestFetchSnapshotRefusesExistingDir(t *testing.T) {
	src := writeTestArtifact(t)
	s := serveArtifact(t, src)
	c := dialT(t, s, ClientOptions{})
	p := &PeerClient{c: c}
	dst := t.TempDir() // exists
	if _, err := p.FetchSnapshot(context.Background(), dst); err == nil {
		t.Fatal("fetch into an existing directory succeeded")
	}
}

// TestFetchSnapshotExpiredExport: a stale export handle fails the chunk
// stream without leaving a partial directory behind.
func TestFetchSnapshotExpiredExport(t *testing.T) {
	src := writeTestArtifact(t)
	raw, err := os.ReadFile(filepath.Join(src, snapshot.ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	s := startServer(t, ServerOptions{}, map[string]Handler{
		"peer.snapshot.meta": func(_ context.Context, _ Body, _ *Sink) (any, error) {
			return &snapshotMetaResponse{Export: 1, Manifest: raw}, nil
		},
		"peer.snapshot.chunks": func(_ context.Context, _ Body, _ *Sink) (any, error) {
			return nil, fmt.Errorf("export 1 expired")
		},
	})
	c := dialT(t, s, ClientOptions{})
	p := &PeerClient{c: c}
	dst := filepath.Join(t.TempDir(), "fetched")
	if _, err := p.FetchSnapshot(context.Background(), dst); err == nil {
		t.Fatal("fetch with expired export succeeded")
	}
	if _, err := os.Stat(dst); !os.IsNotExist(err) {
		t.Fatalf("failed fetch left %s behind", dst)
	}
	if _, err := os.Stat(dst + ".partial"); !os.IsNotExist(err) {
		t.Fatalf("failed fetch left staging dir behind")
	}
}
