package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"reflect"
	"testing"
	"time"
	"unicode/utf8"

	"repro/internal/deliver"
	"repro/internal/ledger"
	"repro/internal/rwset"
	"repro/internal/service"
	"repro/internal/statedb"
)

// rpcSeedPayloads serializes one instance of every RPC body in the
// catalogue, so the fuzzer starts from realistic protocol traffic
// rather than random JSON.
func rpcSeedPayloads(t interface{ Fatal(...any) }) [][]byte {
	marshal := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	prop := &ledger.Proposal{TxID: "tx1", Chaincode: "asset", Function: "set", Args: []string{"k", "v"}}
	bodies := []any{
		&request{Method: "peer.endorse", Body: marshal(&endorseRequest{Proposal: prop, Transient: map[string][]byte{"p": []byte("x")}})},
		&request{Method: "peer.subscribe", Body: marshal(&subscribeRequest{From: 3})},
		&request{Method: "peer.pvt", Body: marshal(&pvtRequest{TxID: "tx1", Collection: "pdc1"})},
		&request{Method: "peer.pvtpush", Body: marshal(&rwset.TxPvtRWSet{TxID: "tx1", CollSets: []rwset.CollPvtRWSet{{Collection: "pdc1", Writes: []rwset.KVWrite{{Key: "k", Value: []byte("v")}}}}})},
		&request{Method: "peer.info"},
		&request{Method: "order.submit", Body: marshal(&orderRequest{Tx: []byte(`{"tx_id":"tx1"}`)})},
		&request{Method: "order.inpending", Body: marshal(&txIDRequest{TxID: "tx1"})},
		&request{Method: "order.blocks", Body: marshal(&blocksRequest{From: 0})},
		&request{Method: "gw.submit", Body: marshal(service.NewInvoke("asset", "set", "k", "v"))},
		&request{Method: "gw.status", Body: marshal(&handleRequest{Handle: 7})},
		&response{Body: marshal(&infoResponse{Name: "peer0.org1", Org: "org1", Channel: "c1", Height: 4, StateHash: "aa"})},
		&response{More: true},
		&response{Err: &WireError{Code: codeOverloaded, Message: "shed", RetryAfterMs: 250}},
		&event{Block: &deliver.BlockEvent{Number: 9}},
		&event{Status: &deliver.TxStatusEvent{TxID: "tx1", BlockNum: 9}},
	}
	out := make([][]byte, 0, len(bodies))
	for _, b := range bodies {
		out = append(out, marshal(b))
	}
	return out
}

// FuzzWireFrame feeds arbitrary bytes to the frame reader. The protocol
// promise under test: a reader never panics, never allocates beyond
// maxFrame, and every rejection is a typed error (ErrCorrupt,
// ErrFrameTooLarge, or a short-read io error). Valid frames that decode
// must re-encode byte-identically.
func FuzzWireFrame(f *testing.F) {
	types := []byte{ftRequest, ftResponse, ftEvent, ftCancel}
	for i, payload := range rpcSeedPayloads(f) {
		encoded := appendFrame(nil, frame{Type: types[i%len(types)], Stream: uint64(i), Payload: payload})
		f.Add(encoded)
		// Seed a truncation and a bit flip of each, so the interesting
		// failure paths are in the corpus from generation zero.
		f.Add(encoded[:len(encoded)/2])
		flipped := append([]byte(nil), encoded...)
		flipped[i%len(flipped)] ^= 0x40
		f.Add(flipped)
	}
	// Binary-codec frames: the same traffic the default codec produces,
	// plus a hand-built multi-event batch, so the fuzzer explores the
	// verBinary header path and the ftEvents frame type from generation
	// zero.
	for i, body := range []any{
		&pvtRequest{TxID: "tx1", Collection: "pdc1"},
		&infoResponse{Name: "peer0.org1", Org: "org1", Channel: "c1", Height: 4, StateHash: "aa"},
		&rwset.TxPvtRWSet{TxID: "tx1", CollSets: []rwset.CollPvtRWSet{{Collection: "pdc1", Writes: []rwset.KVWrite{{Key: "k", Value: []byte("v")}}}}},
		&event{Status: &deliver.TxStatusEvent{TxID: "tx1", BlockNum: 9}},
	} {
		bin, ok := binMarshal(body)
		if !ok {
			f.Fatal("binary seed type has no binary codec")
		}
		f.Add(appendFrame(nil, frame{Type: types[i%len(types)], Codec: codecBinary, Stream: uint64(i), Payload: bin}))
	}
	if batch, err := marshalEnvelope(codecBinary, &event{Block: &deliver.BlockEvent{Number: 9}}); err == nil {
		payload := appendUvarint(nil, 2)
		for i := 0; i < 2; i++ {
			payload = appendUvarint(payload, uint64(len(batch)))
			payload = append(payload, batch...)
		}
		f.Add(appendFrame(nil, frame{Type: ftEvents, Codec: codecBinary, Stream: 5, Payload: payload}))
	}
	f.Add([]byte{})
	f.Add([]byte{magic0, magic1, verJSON, ftRequest})
	f.Add([]byte{magic0, magic1, verBinary, ftEvents})

	const maxFrame = 1 << 20 // keep fuzz allocations bounded
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := readFrame(bytes.NewReader(data), maxFrame)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrFrameTooLarge) &&
				!errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("untyped error from readFrame: %v", err)
			}
			return
		}
		// A frame that validated must re-encode to exactly the bytes
		// consumed (header+payload+trailer) — framing is canonical.
		reencoded := appendFrame(nil, got)
		consumed := headerSize + len(got.Payload) + trailerSize
		if !bytes.Equal(reencoded, data[:consumed]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", reencoded, data[:consumed])
		}
		// And reading the re-encoding must yield the same frame.
		again, err := readFrame(bytes.NewReader(reencoded), maxFrame)
		if err != nil {
			t.Fatalf("re-read of valid frame failed: %v", err)
		}
		if again.Type != got.Type || again.Stream != got.Stream || !bytes.Equal(again.Payload, got.Payload) {
			t.Fatalf("re-read mismatch: %+v vs %+v", again, got)
		}
	})
}

// checkCodecEquivalence asserts that decoding v's JSON serialization
// and decoding its binary serialization produce identical structs — the
// contract that lets the two codecs coexist on one connection.
func checkCodecEquivalence(t *testing.T, v any) {
	t.Helper()
	bin, ok := binMarshal(v)
	if !ok {
		t.Fatalf("no binary codec for %T", v)
	}
	jb, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("json marshal %T: %v", v, err)
	}
	jv := reflect.New(reflect.TypeOf(v).Elem()).Interface()
	bv := reflect.New(reflect.TypeOf(v).Elem()).Interface()
	if err := json.Unmarshal(jb, jv); err != nil {
		t.Fatalf("json unmarshal %T: %v", v, err)
	}
	if ok, err := binUnmarshal(bin, bv); !ok || err != nil {
		t.Fatalf("binary unmarshal %T: ok=%v err=%v", v, ok, err)
	}
	if !reflect.DeepEqual(jv, bv) {
		t.Fatalf("%T: JSON and binary decodes differ:\n json: %#v\n bin:  %#v", v, jv, bv)
	}
}

// FuzzCodecEquivalence drives fuzzed field values through both codecs
// and requires the decoded structs to match exactly — nil-ness of
// slices and maps included. This is the wire's substitute for a schema:
// JSON stays the reference semantics, and the binary codec must never
// diverge from it.
func FuzzCodecEquivalence(f *testing.F) {
	f.Add("tx1", "pdc1", "k", []byte("v"), uint64(3), int64(200), false)
	f.Add("", "", "", []byte(nil), uint64(0), int64(0), true)
	f.Add("a b", "c", "日本", []byte{0, 1, 2}, uint64(1)<<40, int64(-5), false)
	f.Fuzz(func(t *testing.T, txid, coll, key string, value []byte, num uint64, n int64, flag bool) {
		if !utf8.ValidString(txid) || !utf8.ValidString(coll) || !utf8.ValidString(key) {
			t.Skip("encoding/json replaces invalid UTF-8; not an equivalence the codecs promise")
		}
		// Both codecs preserve nil-vs-empty, but `omitempty` JSON tags
		// drop empty non-nil values, which decode back as nil — an
		// encoding/json quirk, not a codec property. Normalize inputs.
		if len(value) == 0 {
			value = nil
		}
		ccEvent := &ledger.ChaincodeEvent{Name: key, Payload: value}
		if !flag {
			ccEvent = nil
		}
		msgs := []any{
			&pvtRequest{TxID: txid, Collection: coll},
			&txIDRequest{TxID: txid},
			&subscribeRequest{From: num, Live: flag},
			&blocksRequest{From: num},
			&handleRequest{Handle: num},
			&inPendingResponse{Pending: flag},
			&infoResponse{Name: txid, Org: coll, Channel: key, Height: num, StateHash: coll},
			&orderRequest{Tx: value},
			&evaluateResponse{Payload: value},
			&submitAsyncResponse{Handle: num, TxID: txid},
			&request{Method: txid, Deadline: n},
			&response{Err: &WireError{Code: txid, Message: coll, RetryAfterMs: n}, More: flag},
			&endorseRequest{
				Proposal:  &ledger.Proposal{TxID: txid, ChannelID: coll, Chaincode: key, Function: txid, Args: []string{txid, key}},
				Transient: map[string][]byte{key: value},
			},
			&rwset.TxPvtRWSet{TxID: txid, CollSets: []rwset.CollPvtRWSet{{
				Collection: coll,
				Reads:      []rwset.KVRead{{Key: key, Version: statedb.Version(num)}},
				Writes:     []rwset.KVWrite{{Key: key, Value: value, IsDelete: flag}},
			}}},
			&service.InvokeRequest{Channel: coll, Chaincode: txid, Function: key, Args: []string{txid, key}, Transient: map[string][]byte{key: value}},
			&service.SubmitResult{TxID: txid, Payload: value, Code: ledger.ValidationCode(n), Detail: coll, BlockNum: num, Event: ccEvent, MissingCollections: []string{coll}, CommitWait: time.Duration(n)},
			&ledger.ProposalResponse{Payload: value, PlainPayload: value, Response: ledger.Response{Status: int32(n), Message: coll, Payload: value}, Endorsement: ledger.Endorsement{Endorser: value, Signature: value}},
			&event{Status: &deliver.TxStatusEvent{BlockNum: num, TxIndex: int(n), TxID: txid, Code: ledger.ValidationCode(n), Detail: coll, MissingCollections: []string{coll}, ChaincodeEvent: ccEvent, Replayed: flag}},
		}
		for _, m := range msgs {
			checkCodecEquivalence(t, m)
		}
	})
}

// FuzzWireErrorRoundTrip checks the error-code mapping never loses the
// retry hint and never panics on arbitrary code/message pairs.
func FuzzWireErrorRoundTrip(f *testing.F) {
	f.Add("overloaded", "busy", int64(250))
	f.Add("no_endorsers", "", int64(0))
	f.Add("internal", "boom", int64(0))
	f.Add("unknown_code", "??", int64(-1))
	f.Add("", "", int64(1<<62))
	f.Fuzz(func(t *testing.T, code, msg string, retryMs int64) {
		we := &WireError{Code: code, Message: msg, RetryAfterMs: retryMs}
		err := decodeError(we)
		if err == nil {
			t.Fatalf("decodeError(%+v) = nil", we)
		}
		// Re-encoding a decoded error must preserve the code for every
		// catalogued code (unknown codes degrade to internal).
		if _, known := sentinelByCode[code]; known || code == codeOverloaded {
			back := encodeError(err)
			if back.Code != code {
				t.Fatalf("code %q round-tripped to %q", code, back.Code)
			}
		}
	})
}
