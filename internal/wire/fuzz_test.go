package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"testing"

	"repro/internal/deliver"
	"repro/internal/ledger"
	"repro/internal/rwset"
	"repro/internal/service"
)

// rpcSeedPayloads serializes one instance of every RPC body in the
// catalogue, so the fuzzer starts from realistic protocol traffic
// rather than random JSON.
func rpcSeedPayloads(t interface{ Fatal(...any) }) [][]byte {
	marshal := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	prop := &ledger.Proposal{TxID: "tx1", Chaincode: "asset", Function: "set", Args: []string{"k", "v"}}
	bodies := []any{
		&request{Method: "peer.endorse", Body: marshal(&endorseRequest{Proposal: prop, Transient: map[string][]byte{"p": []byte("x")}})},
		&request{Method: "peer.subscribe", Body: marshal(&subscribeRequest{From: 3})},
		&request{Method: "peer.pvt", Body: marshal(&pvtRequest{TxID: "tx1", Collection: "pdc1"})},
		&request{Method: "peer.pvtpush", Body: marshal(&rwset.TxPvtRWSet{TxID: "tx1", CollSets: []rwset.CollPvtRWSet{{Collection: "pdc1", Writes: []rwset.KVWrite{{Key: "k", Value: []byte("v")}}}}})},
		&request{Method: "peer.info"},
		&request{Method: "order.submit", Body: marshal(&orderRequest{Tx: []byte(`{"tx_id":"tx1"}`)})},
		&request{Method: "order.inpending", Body: marshal(&txIDRequest{TxID: "tx1"})},
		&request{Method: "order.blocks", Body: marshal(&blocksRequest{From: 0})},
		&request{Method: "gw.submit", Body: marshal(service.NewInvoke("asset", "set", "k", "v"))},
		&request{Method: "gw.status", Body: marshal(&handleRequest{Handle: 7})},
		&response{Body: marshal(&infoResponse{Name: "peer0.org1", Org: "org1", Channel: "c1", Height: 4, StateHash: "aa"})},
		&response{More: true},
		&response{Err: &WireError{Code: codeOverloaded, Message: "shed", RetryAfterMs: 250}},
		&event{Block: &deliver.BlockEvent{Number: 9}},
		&event{Status: &deliver.TxStatusEvent{TxID: "tx1", BlockNum: 9}},
	}
	out := make([][]byte, 0, len(bodies))
	for _, b := range bodies {
		out = append(out, marshal(b))
	}
	return out
}

// FuzzWireFrame feeds arbitrary bytes to the frame reader. The protocol
// promise under test: a reader never panics, never allocates beyond
// maxFrame, and every rejection is a typed error (ErrCorrupt,
// ErrFrameTooLarge, or a short-read io error). Valid frames that decode
// must re-encode byte-identically.
func FuzzWireFrame(f *testing.F) {
	types := []byte{ftRequest, ftResponse, ftEvent, ftCancel}
	for i, payload := range rpcSeedPayloads(f) {
		encoded := appendFrame(nil, frame{Type: types[i%len(types)], Stream: uint64(i), Payload: payload})
		f.Add(encoded)
		// Seed a truncation and a bit flip of each, so the interesting
		// failure paths are in the corpus from generation zero.
		f.Add(encoded[:len(encoded)/2])
		flipped := append([]byte(nil), encoded...)
		flipped[i%len(flipped)] ^= 0x40
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte{magic0, magic1, version, ftRequest})

	const maxFrame = 1 << 20 // keep fuzz allocations bounded
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := readFrame(bytes.NewReader(data), maxFrame)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrFrameTooLarge) &&
				!errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("untyped error from readFrame: %v", err)
			}
			return
		}
		// A frame that validated must re-encode to exactly the bytes
		// consumed (header+payload+trailer) — framing is canonical.
		reencoded := appendFrame(nil, got)
		consumed := headerSize + len(got.Payload) + trailerSize
		if !bytes.Equal(reencoded, data[:consumed]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", reencoded, data[:consumed])
		}
		// And reading the re-encoding must yield the same frame.
		again, err := readFrame(bytes.NewReader(reencoded), maxFrame)
		if err != nil {
			t.Fatalf("re-read of valid frame failed: %v", err)
		}
		if again.Type != got.Type || again.Stream != got.Stream || !bytes.Equal(again.Payload, got.Payload) {
			t.Fatalf("re-read mismatch: %+v vs %+v", again, got)
		}
	})
}

// FuzzWireErrorRoundTrip checks the error-code mapping never loses the
// retry hint and never panics on arbitrary code/message pairs.
func FuzzWireErrorRoundTrip(f *testing.F) {
	f.Add("overloaded", "busy", int64(250))
	f.Add("no_endorsers", "", int64(0))
	f.Add("internal", "boom", int64(0))
	f.Add("unknown_code", "??", int64(-1))
	f.Add("", "", int64(1<<62))
	f.Fuzz(func(t *testing.T, code, msg string, retryMs int64) {
		we := &WireError{Code: code, Message: msg, RetryAfterMs: retryMs}
		err := decodeError(we)
		if err == nil {
			t.Fatalf("decodeError(%+v) = nil", we)
		}
		// Re-encoding a decoded error must preserve the code for every
		// catalogued code (unknown codes degrade to internal).
		if _, known := sentinelByCode[code]; known || code == codeOverloaded {
			back := encodeError(err)
			if back.Code != code {
				t.Fatalf("code %q round-tripped to %q", code, back.Code)
			}
		}
	})
}
