package wire

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/deliver"
	"repro/internal/gateway"
	"repro/internal/orderer"
)

// Error codes carried in WireError.Code. Each maps to a sentinel from
// the originating package, so errors.Is/errors.As give the same answers
// on both sides of the wire.
const (
	codeOverloaded     = "overloaded"
	codeNoEndorsers    = "no_endorsers"
	codeMismatch       = "endorse_mismatch"
	codeBadEndorserSig = "bad_endorser_sig"
	codeCommitUnavail  = "commit_unavailable"
	codeOrdererStopped = "orderer_stopped"
	codeCompacted      = "compacted"
	codeSlowConsumer   = "slow_consumer"
	codeDeliverClosed  = "deliver_closed"
	codeCanceled       = "canceled"
	codeDeadline       = "deadline"
	codeInternal       = "internal"
)

// sentinels pairs codes with package error values, in encode-precedence
// order: package-specific sentinels before the generic context errors,
// so an error chain matching several (say deliver.ErrClosed wrapping
// context.Canceled) always gets the same code. The overloaded code is
// handled separately because it reconstructs a typed error carrying the
// retry hint.
var sentinels = []struct {
	code string
	err  error
}{
	{codeNoEndorsers, gateway.ErrNoEndorsers},
	{codeMismatch, gateway.ErrEndorsementMismatch},
	{codeBadEndorserSig, gateway.ErrBadEndorserSignature},
	{codeCommitUnavail, gateway.ErrCommitStatusUnavailable},
	{codeOrdererStopped, orderer.ErrStopped},
	{codeCompacted, orderer.ErrCompacted},
	{codeSlowConsumer, deliver.ErrSlowConsumer},
	{codeDeliverClosed, deliver.ErrClosed},
	{codeCanceled, context.Canceled},
	{codeDeadline, context.DeadlineExceeded},
}

// sentinelByCode indexes sentinels for decoding.
var sentinelByCode = func() map[string]error {
	m := make(map[string]error, len(sentinels))
	for _, s := range sentinels {
		m[s.code] = s.err
	}
	return m
}()

// encodeError maps a handler error onto the wire. The first matching
// sentinel wins; anything unrecognized travels as an opaque internal
// error (message only).
func encodeError(err error) *WireError {
	var ov *gateway.OverloadedError
	if errors.As(err, &ov) {
		return &WireError{
			Code:         codeOverloaded,
			Message:      err.Error(),
			RetryAfterMs: ov.RetryAfter.Milliseconds(),
		}
	}
	for _, s := range sentinels {
		if errors.Is(err, s.err) {
			return &WireError{Code: s.code, Message: err.Error()}
		}
	}
	return &WireError{Code: codeInternal, Message: err.Error()}
}

// decodeError reconstructs a Go error from the wire form. Known codes
// wrap their package sentinel so errors.Is matches; the overloaded code
// rebuilds a *gateway.OverloadedError so errors.As recovers the retry
// hint (satellite 6: the shedding gateway's backpressure signal
// survives the process boundary).
func decodeError(we *WireError) error {
	if we == nil {
		return nil
	}
	switch we.Code {
	case codeOverloaded:
		retry := time.Duration(we.RetryAfterMs) * time.Millisecond
		if retry < time.Millisecond && we.RetryAfterMs > 0 {
			retry = time.Millisecond
		}
		return &gateway.OverloadedError{RetryAfter: retry}
	case codeInternal, "":
		return fmt.Errorf("wire: remote error: %s", we.Message)
	}
	if sentinel, ok := sentinelByCode[we.Code]; ok {
		return fmt.Errorf("wire: remote: %w", sentinel)
	}
	return fmt.Errorf("wire: remote error [%s]: %s", we.Code, we.Message)
}
