package wire

import (
	"context"
	"crypto/tls"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/deliver"
	"repro/internal/fabcrypto"
	"repro/internal/identity"
	"repro/internal/service"
)

// ClientOptions configure a wire client connection.
type ClientOptions struct {
	// Identity, when set together with ServerKey, enables TLS: the
	// client presents a certificate derived from the identity's key and
	// pins the server's leaf certificate to ServerKey.
	Identity *identity.Identity
	// ServerKey is the fabcrypto public key the server's TLS leaf
	// certificate must speak for.
	ServerKey fabcrypto.PublicKey
	// MaxFrame bounds frame payloads; 0 selects DefaultMaxFrame.
	MaxFrame int
	// DialTimeout bounds the TCP (and TLS) dial; 0 means 10s.
	DialTimeout time.Duration
}

// Client is one multiplexed wire connection: any number of concurrent
// unary calls and event streams share it, demultiplexed by stream ID.
type Client struct {
	cn *conn

	mu      sync.Mutex
	next    uint64
	calls   map[uint64]chan *response
	streams map[uint64]*eventStream
	closed  bool
}

// Dial connects to a wire server. With TLS material in opts the
// connection is encrypted and the server's identity pinned; otherwise
// it is plaintext (loopback benchmarks).
func Dial(addr string, opts ClientOptions) (*Client, error) {
	maxFrame := opts.MaxFrame
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	timeout := opts.DialTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	var nc net.Conn
	var err error
	if opts.Identity != nil && len(opts.ServerKey) > 0 {
		cert, cerr := opts.Identity.TLSCertificate()
		if cerr != nil {
			return nil, fmt.Errorf("wire: client tls: %w", cerr)
		}
		dialer := &net.Dialer{Timeout: timeout}
		nc, err = tls.DialWithDialer(dialer, "tcp", addr, &tls.Config{
			Certificates: []tls.Certificate{cert},
			// Trust is established by pinning the leaf key, not by
			// walking a CA chain — the consortium has no TLS PKI.
			InsecureSkipVerify:    true,
			VerifyPeerCertificate: fabcrypto.VerifyPinnedKey(opts.ServerKey),
			MinVersion:            tls.VersionTLS13,
		})
	} else {
		nc, err = net.DialTimeout("tcp", addr, timeout)
	}
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	c := &Client{
		cn:      newConn(nc, maxFrame),
		calls:   make(map[uint64]chan *response),
		streams: make(map[uint64]*eventStream),
	}
	go c.readLoop()
	return c, nil
}

// Close shuts the connection down; in-flight calls fail with
// ErrConnClosed.
func (c *Client) Close() { c.cn.close(nil); c.fail(ErrConnClosed) }

// readLoop demultiplexes inbound frames to call waiters and streams.
func (c *Client) readLoop() {
	for {
		f, err := c.cn.read()
		if err != nil {
			c.cn.close(err)
			c.fail(c.cn.closeErr())
			return
		}
		switch f.Type {
		case ftResponse:
			var resp response
			if err := json.Unmarshal(f.Payload, &resp); err != nil {
				c.cn.close(fmt.Errorf("%w: response body: %v", ErrCorrupt, err))
				c.fail(c.cn.closeErr())
				return
			}
			c.dispatchResponse(f.Stream, &resp)
		case ftEvent:
			var ev event
			if err := json.Unmarshal(f.Payload, &ev); err != nil {
				c.cn.close(fmt.Errorf("%w: event body: %v", ErrCorrupt, err))
				c.fail(c.cn.closeErr())
				return
			}
			c.dispatchEvent(f.Stream, &ev)
		default:
			// Servers never send requests or cancels; a frame of that
			// type here means the peer is not speaking the protocol.
			c.cn.close(fmt.Errorf("%w: unexpected frame type %d from server", ErrCorrupt, f.Type))
			c.fail(c.cn.closeErr())
			return
		}
	}
}

func (c *Client) dispatchResponse(stream uint64, resp *response) {
	c.mu.Lock()
	if ch, ok := c.calls[stream]; ok {
		delete(c.calls, stream)
		c.mu.Unlock()
		ch <- resp
		return
	}
	es := c.streams[stream]
	if es != nil && !resp.More {
		delete(c.streams, stream)
	}
	c.mu.Unlock()
	if es != nil && !resp.More {
		// Terminal response: the stream ended server-side.
		es.finish(decodeError(resp.Err))
	}
}

func (c *Client) dispatchEvent(stream uint64, ev *event) {
	c.mu.Lock()
	es := c.streams[stream]
	c.mu.Unlock()
	if es == nil {
		return // events racing a local Close; drop
	}
	if !es.push(ev.decode()) {
		// Consumer is not draining: evict it, mirroring the deliver
		// service's slow-consumer policy, and tell the server to stop.
		c.mu.Lock()
		delete(c.streams, stream)
		c.mu.Unlock()
		es.finish(deliver.ErrSlowConsumer)
		c.cn.send(frame{Type: ftCancel, Stream: stream})
	}
}

// fail terminates every outstanding call and stream.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	calls, streams := c.calls, c.streams
	c.calls, c.streams = map[uint64]chan *response{}, map[uint64]*eventStream{}
	c.mu.Unlock()
	for _, ch := range calls {
		ch <- &response{Err: &WireError{Code: codeInternal, Message: err.Error()}}
	}
	for _, es := range streams {
		es.finish(err)
	}
}

// newRequest marshals a request frame for method with the given body.
func newRequest(ctx context.Context, method string, body any) ([]byte, error) {
	req := request{Method: method}
	if dl, ok := ctx.Deadline(); ok {
		req.Deadline = dl.UnixNano()
	}
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return nil, fmt.Errorf("wire: marshal %s request: %w", method, err)
		}
		req.Body = b
	}
	return json.Marshal(req)
}

// Call performs one unary RPC: request out, single response in. The
// context's deadline travels with the request; cancellation sends an
// ftCancel so the server abandons the handler.
func (c *Client) Call(ctx context.Context, method string, in, out any) error {
	payload, err := newRequest(ctx, method, in)
	if err != nil {
		return err
	}
	ch := make(chan *response, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrConnClosed
	}
	c.next++
	id := c.next
	c.calls[id] = ch
	c.mu.Unlock()

	if err := c.cn.send(frame{Type: ftRequest, Stream: id, Payload: payload}); err != nil {
		c.mu.Lock()
		delete(c.calls, id)
		c.mu.Unlock()
		return err
	}
	var resp *response
	select {
	case resp = <-ch:
	case <-ctx.Done():
		c.mu.Lock()
		_, inflight := c.calls[id]
		delete(c.calls, id)
		c.mu.Unlock()
		if inflight {
			c.cn.send(frame{Type: ftCancel, Stream: id})
			return ctx.Err()
		}
		// Response raced the cancellation; take it.
		resp = <-ch
	}
	if resp.Err != nil {
		return decodeError(resp.Err)
	}
	if out != nil && len(resp.Body) > 0 {
		if err := json.Unmarshal(resp.Body, out); err != nil {
			return fmt.Errorf("wire: unmarshal %s response: %w", method, err)
		}
	}
	return nil
}

// Stream opens an event stream. It returns once the server acknowledged
// the subscription (a response with More set), so anything ordered
// after Stream returns is observed by the stream — the registration-
// before-ordering guarantee commit waiters depend on.
func (c *Client) Stream(ctx context.Context, method string, in any) (service.Stream, error) {
	payload, err := newRequest(ctx, method, in)
	if err != nil {
		return nil, err
	}
	ack := make(chan *response, 1)
	es := newEventStream(c)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrConnClosed
	}
	c.next++
	id := c.next
	es.id = id
	c.calls[id] = ack // the ACK arrives as a response on the same stream
	// Register the stream before the request leaves: a fast handler's
	// events (and terminal response) can arrive right behind the ACK,
	// and the read loop must find somewhere to put them.
	c.streams[id] = es
	c.mu.Unlock()

	deregister := func() {
		c.mu.Lock()
		delete(c.calls, id)
		delete(c.streams, id)
		c.mu.Unlock()
	}
	if err := c.cn.send(frame{Type: ftRequest, Stream: id, Payload: payload}); err != nil {
		deregister()
		return nil, err
	}
	var resp *response
	select {
	case resp = <-ack:
	case <-ctx.Done():
		c.mu.Lock()
		_, inflight := c.calls[id]
		c.mu.Unlock()
		if inflight {
			deregister()
			c.cn.send(frame{Type: ftCancel, Stream: id})
			return nil, ctx.Err()
		}
		resp = <-ack
	}
	if resp.Err != nil {
		deregister()
		return nil, decodeError(resp.Err)
	}
	if !resp.More {
		deregister()
		return nil, fmt.Errorf("%w: stream %s acknowledged without More", ErrCorrupt, method)
	}
	return es, nil
}

// eventStream is the client side of a deliver stream: a buffered event
// channel fed by the read loop, satisfying service.Stream.
type eventStream struct {
	c  *Client
	id uint64
	ch chan deliver.Event

	mu     sync.Mutex
	err    error
	closed bool
}

// streamBuffer matches deliver.DefaultBufferSize: the wire stream adds
// one more bounded stage to the same slow-consumer policy.
const streamBuffer = 1024

func newEventStream(c *Client) *eventStream {
	return &eventStream{c: c, ch: make(chan deliver.Event, streamBuffer)}
}

// push enqueues an event without blocking; false means the buffer is
// full and the consumer must be evicted (the read loop cannot block, or
// one stalled stream would freeze every call on the connection). It
// holds es.mu across the send so a concurrent finish (which closes the
// channel under the same mutex) cannot race it into a send-on-closed
// panic; events racing a close are dropped.
func (es *eventStream) push(ev deliver.Event) bool {
	if ev == nil {
		return true
	}
	es.mu.Lock()
	defer es.mu.Unlock()
	if es.closed {
		return true
	}
	select {
	case es.ch <- ev:
		return true
	default:
		return false
	}
}

// finish records the terminal error and closes the event channel, under
// the same mutex push sends under.
func (es *eventStream) finish(err error) {
	es.mu.Lock()
	defer es.mu.Unlock()
	if es.closed {
		return
	}
	es.closed = true
	if err != nil && es.err == nil {
		es.err = err
	}
	close(es.ch)
}

// Events returns the ordered event channel; it closes when the stream
// ends.
func (es *eventStream) Events() <-chan deliver.Event { return es.ch }

// Err reports why the stream ended; nil while live or after a clean
// Close.
func (es *eventStream) Err() error {
	es.mu.Lock()
	defer es.mu.Unlock()
	if es.err == deliver.ErrClosed {
		return nil
	}
	return es.err
}

// Close cancels the stream server-side and releases it. Idempotent.
func (es *eventStream) Close() {
	es.mu.Lock()
	if es.closed {
		es.mu.Unlock()
		return
	}
	es.mu.Unlock()
	es.c.mu.Lock()
	delete(es.c.streams, es.id)
	es.c.mu.Unlock()
	es.c.cn.send(frame{Type: ftCancel, Stream: es.id})
	es.finish(nil)
}
