package wire

import (
	"context"
	"crypto/tls"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/deliver"
	"repro/internal/fabcrypto"
	"repro/internal/identity"
	"repro/internal/service"
)

// ClientOptions configure a wire client connection.
type ClientOptions struct {
	// Identity, when set together with ServerKey, enables TLS: the
	// client presents a certificate derived from the identity's key and
	// pins the server's leaf certificate to ServerKey.
	Identity *identity.Identity
	// ServerKey is the fabcrypto public key the server's TLS leaf
	// certificate must speak for.
	ServerKey fabcrypto.PublicKey
	// MaxFrame bounds frame payloads; 0 selects DefaultMaxFrame.
	MaxFrame int
	// DialTimeout bounds the TCP (and TLS) dial; 0 means 10s.
	DialTimeout time.Duration
	// Codec selects the preferred payload encoding; empty selects
	// CodecBinary. The client drives negotiation: servers always answer
	// in the codec a frame arrived with, so CodecJSON turns the whole
	// conversation back into the PR 8 debug format.
	Codec Codec
}

// Client is one multiplexed wire connection: any number of concurrent
// unary calls and event streams share it, demultiplexed by stream ID.
type Client struct {
	cn    *conn
	codec codecID

	mu      sync.Mutex
	next    uint64
	calls   map[uint64]*pendingCall
	streams map[uint64]*eventStream
	rpc     map[string]*RPCStat
	closed  bool
}

// pendingCall is a registered unary waiter (or a stream's ACK waiter).
type pendingCall struct {
	ch     chan respMsg
	method string
}

// respMsg hands a response from the read loop to its waiter together
// with the frame codec and the pooled payload buffer the response body
// aliases; the waiter releases the buffer after decoding.
type respMsg struct {
	resp    *response
	codec   codecID
	payload []byte
}

// RPCStat aggregates one method's traffic as seen by a client: calls
// (or stream opens), framed bytes out and framed bytes in (responses
// and events, including batch frames).
type RPCStat struct {
	Calls    uint64 `json:"calls"`
	BytesOut uint64 `json:"bytes_out"`
	BytesIn  uint64 `json:"bytes_in"`
}

// Dial connects to a wire server. With TLS material in opts the
// connection is encrypted and the server's identity pinned; otherwise
// it is plaintext (loopback benchmarks).
func Dial(addr string, opts ClientOptions) (*Client, error) {
	maxFrame := opts.MaxFrame
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	timeout := opts.DialTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	codec, err := ParseCodec(string(opts.Codec))
	if err != nil {
		return nil, err
	}
	var nc net.Conn
	if opts.Identity != nil && len(opts.ServerKey) > 0 {
		cert, cerr := opts.Identity.TLSCertificate()
		if cerr != nil {
			return nil, fmt.Errorf("wire: client tls: %w", cerr)
		}
		dialer := &net.Dialer{Timeout: timeout}
		nc, err = tls.DialWithDialer(dialer, "tcp", addr, &tls.Config{
			Certificates: []tls.Certificate{cert},
			// Trust is established by pinning the leaf key, not by
			// walking a CA chain — the consortium has no TLS PKI.
			InsecureSkipVerify:    true,
			VerifyPeerCertificate: fabcrypto.VerifyPinnedKey(opts.ServerKey),
			MinVersion:            tls.VersionTLS13,
		})
	} else {
		nc, err = net.DialTimeout("tcp", addr, timeout)
	}
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	c := &Client{
		cn:      newConn(nc, maxFrame),
		codec:   codec.id(),
		calls:   make(map[uint64]*pendingCall),
		streams: make(map[uint64]*eventStream),
		rpc:     make(map[string]*RPCStat),
	}
	go c.readLoop()
	return c, nil
}

// Close shuts the connection down; in-flight calls fail with
// ErrConnClosed.
func (c *Client) Close() { c.cn.close(nil); c.fail(ErrConnClosed) }

// RPCStats returns a snapshot of per-method traffic over this client.
func (c *Client) RPCStats() map[string]RPCStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]RPCStat, len(c.rpc))
	for m, s := range c.rpc {
		out[m] = *s
	}
	return out
}

func (c *Client) rpcStatLocked(method string) *RPCStat {
	s := c.rpc[method]
	if s == nil {
		s = &RPCStat{}
		c.rpc[method] = s
	}
	return s
}

// noteOut records one outbound request of framed size n for method.
func (c *Client) noteOut(method string, n int) {
	c.mu.Lock()
	s := c.rpcStatLocked(method)
	s.Calls++
	s.BytesOut += uint64(headerSize + n + trailerSize)
	c.mu.Unlock()
}

// noteInLocked attributes one inbound frame of payload size n.
func (c *Client) noteInLocked(method string, n int) {
	if method == "" {
		return
	}
	c.rpcStatLocked(method).BytesIn += uint64(headerSize + n + trailerSize)
}

// readLoop demultiplexes inbound frames to call waiters and streams.
func (c *Client) readLoop() {
	for {
		f, err := c.cn.read()
		if err != nil {
			c.cn.close(err)
			c.fail(c.cn.closeErr())
			return
		}
		switch f.Type {
		case ftResponse:
			var resp response
			if err := unmarshalEnvelope(f.Codec, f.Payload, &resp); err != nil {
				putBuf(f.Payload)
				c.cn.close(fmt.Errorf("%w: response body: %v", ErrCorrupt, err))
				c.fail(c.cn.closeErr())
				return
			}
			c.dispatchResponse(f.Stream, &resp, f.Codec, f.Payload)
		case ftEvent, ftEvents:
			if !c.dispatchEventFrame(f) {
				c.fail(c.cn.closeErr())
				return
			}
		default:
			// Servers never send requests or cancels; a frame of that
			// type here means the peer is not speaking the protocol.
			putBuf(f.Payload)
			c.cn.close(fmt.Errorf("%w: unexpected frame type %d from server", ErrCorrupt, f.Type))
			c.fail(c.cn.closeErr())
			return
		}
	}
}

func (c *Client) dispatchResponse(stream uint64, resp *response, codec codecID, payload []byte) {
	c.mu.Lock()
	if pc, ok := c.calls[stream]; ok {
		delete(c.calls, stream)
		c.noteInLocked(pc.method, len(payload))
		c.mu.Unlock()
		pc.ch <- respMsg{resp: resp, codec: codec, payload: payload}
		return
	}
	es := c.streams[stream]
	if es != nil {
		c.noteInLocked(es.method, len(payload))
		if !resp.More {
			delete(c.streams, stream)
		}
	}
	c.mu.Unlock()
	if es != nil && !resp.More {
		// Terminal response: the stream ended server-side.
		es.finish(decodeError(resp.Err))
	}
	putBuf(payload)
}

// dispatchEventFrame routes an ftEvent or ftEvents frame to its stream;
// false poisons the connection (decode failure).
func (c *Client) dispatchEventFrame(f frame) bool {
	c.mu.Lock()
	es := c.streams[f.Stream]
	if es != nil {
		c.noteInLocked(es.method, len(f.Payload))
	}
	c.mu.Unlock()
	if es == nil {
		putBuf(f.Payload) // events racing a local Close; drop
		return true
	}
	evs, err := decodeEventFrame(f)
	putBuf(f.Payload)
	if err != nil {
		c.cn.close(fmt.Errorf("%w: event body: %v", ErrCorrupt, err))
		return false
	}
	for _, ev := range evs {
		if es.push(ev) {
			continue
		}
		// Consumer is not draining: evict it, mirroring the deliver
		// service's slow-consumer policy, and tell the server to stop.
		// Remaining events of a batch are dropped with the stream.
		c.mu.Lock()
		delete(c.streams, f.Stream)
		c.mu.Unlock()
		es.finish(deliver.ErrSlowConsumer)
		c.cn.send(frame{Type: ftCancel, Codec: c.codec, Stream: f.Stream})
		break
	}
	return true
}

// decodeEventFrame decodes the deliver events of an ftEvent or ftEvents
// frame, in stream order. Decoded events own their memory (nothing
// aliases the frame payload).
func decodeEventFrame(f frame) ([]deliver.Event, error) {
	if f.Type == ftEvent {
		var ev event
		if err := unmarshalEnvelope(f.Codec, f.Payload, &ev); err != nil {
			return nil, err
		}
		return []deliver.Event{ev.decode()}, nil
	}
	if f.Codec == codecBinary {
		r := &binReader{b: f.Payload}
		n := r.uvarint()
		if r.err != nil || n > uint64(r.remaining()) {
			r.fail("event batch count")
			return nil, r.err
		}
		out := make([]deliver.Event, 0, n)
		for i := uint64(0); i < n; i++ {
			size := r.uvarint()
			if r.err != nil || size > uint64(r.remaining()) {
				r.fail("event batch item")
				return nil, r.err
			}
			item := r.take(int(size))
			var ev event
			if err := unmarshalBody(codecBinary, item, &ev); err != nil {
				return nil, err
			}
			out = append(out, ev.decode())
		}
		if err := r.done(); err != nil {
			return nil, err
		}
		return out, nil
	}
	var evs []event
	if err := json.Unmarshal(f.Payload, &evs); err != nil {
		return nil, err
	}
	out := make([]deliver.Event, 0, len(evs))
	for i := range evs {
		out = append(out, evs[i].decode())
	}
	return out, nil
}

// fail terminates every outstanding call and stream.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	calls, streams := c.calls, c.streams
	c.calls, c.streams = map[uint64]*pendingCall{}, map[uint64]*eventStream{}
	c.mu.Unlock()
	for _, pc := range calls {
		pc.ch <- respMsg{
			resp:  &response{Err: &WireError{Code: codeInternal, Message: err.Error()}},
			codec: codecJSON,
		}
	}
	for _, es := range streams {
		es.finish(err)
	}
}

// newRequest marshals a request frame for method with the given body,
// returning the pooled payload and the codec the frame must carry.
func (c *Client) newRequest(ctx context.Context, method string, body any) ([]byte, codecID, error) {
	b, bc, err := marshalBody(c.codec, body)
	if err != nil {
		return nil, 0, fmt.Errorf("wire: marshal %s request: %w", method, err)
	}
	req := request{Method: method, Body: b}
	if dl, ok := ctx.Deadline(); ok {
		req.Deadline = dl.UnixNano()
	}
	payload, err := marshalEnvelope(bc, &req)
	putBuf(b)
	if err != nil {
		return nil, 0, fmt.Errorf("wire: marshal %s request: %w", method, err)
	}
	return payload, bc, nil
}

// Call performs one unary RPC: request out, single response in. The
// context's deadline travels with the request; cancellation sends an
// ftCancel so the server abandons the handler.
func (c *Client) Call(ctx context.Context, method string, in, out any) error {
	payload, codec, err := c.newRequest(ctx, method, in)
	if err != nil {
		return err
	}
	ch := make(chan respMsg, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		putBuf(payload)
		return ErrConnClosed
	}
	c.next++
	id := c.next
	c.calls[id] = &pendingCall{ch: ch, method: method}
	c.mu.Unlock()

	err = c.cn.send(frame{Type: ftRequest, Codec: codec, Stream: id, Payload: payload})
	c.noteOut(method, len(payload))
	putBuf(payload)
	if err != nil {
		c.mu.Lock()
		delete(c.calls, id)
		c.mu.Unlock()
		return err
	}
	var msg respMsg
	select {
	case msg = <-ch:
	case <-ctx.Done():
		c.mu.Lock()
		_, inflight := c.calls[id]
		delete(c.calls, id)
		c.mu.Unlock()
		if inflight {
			c.cn.send(frame{Type: ftCancel, Codec: codec, Stream: id})
			return ctx.Err()
		}
		// Response raced the cancellation; take it.
		msg = <-ch
	}
	defer putBuf(msg.payload)
	if msg.resp.Err != nil {
		return decodeError(msg.resp.Err)
	}
	if out != nil && len(msg.resp.Body) > 0 {
		if err := unmarshalBody(msg.codec, msg.resp.Body, out); err != nil {
			return fmt.Errorf("wire: unmarshal %s response: %w", method, err)
		}
	}
	return nil
}

// Stream opens an event stream. It returns once the server acknowledged
// the subscription (a response with More set), so anything ordered
// after Stream returns is observed by the stream — the registration-
// before-ordering guarantee commit waiters depend on.
func (c *Client) Stream(ctx context.Context, method string, in any) (service.Stream, error) {
	payload, codec, err := c.newRequest(ctx, method, in)
	if err != nil {
		return nil, err
	}
	ack := make(chan respMsg, 1)
	es := newEventStream(c, method)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		putBuf(payload)
		return nil, ErrConnClosed
	}
	c.next++
	id := c.next
	es.id = id
	c.calls[id] = &pendingCall{ch: ack, method: method} // the ACK arrives as a response on the same stream
	// Register the stream before the request leaves: a fast handler's
	// events (and terminal response) can arrive right behind the ACK,
	// and the read loop must find somewhere to put them.
	c.streams[id] = es
	c.mu.Unlock()

	deregister := func() {
		c.mu.Lock()
		delete(c.calls, id)
		delete(c.streams, id)
		c.mu.Unlock()
	}
	err = c.cn.send(frame{Type: ftRequest, Codec: codec, Stream: id, Payload: payload})
	c.noteOut(method, len(payload))
	putBuf(payload)
	if err != nil {
		deregister()
		return nil, err
	}
	var msg respMsg
	select {
	case msg = <-ack:
	case <-ctx.Done():
		c.mu.Lock()
		_, inflight := c.calls[id]
		c.mu.Unlock()
		if inflight {
			deregister()
			c.cn.send(frame{Type: ftCancel, Codec: codec, Stream: id})
			return nil, ctx.Err()
		}
		msg = <-ack
	}
	defer putBuf(msg.payload)
	if msg.resp.Err != nil {
		deregister()
		return nil, decodeError(msg.resp.Err)
	}
	if !msg.resp.More {
		deregister()
		return nil, fmt.Errorf("%w: stream %s acknowledged without More", ErrCorrupt, method)
	}
	return es, nil
}

// eventStream is the client side of a deliver stream: a buffered event
// channel fed by the read loop, satisfying service.Stream.
type eventStream struct {
	c      *Client
	id     uint64
	method string
	ch     chan deliver.Event

	mu     sync.Mutex
	err    error
	closed bool
}

// streamBuffer matches deliver.DefaultBufferSize: the wire stream adds
// one more bounded stage to the same slow-consumer policy.
const streamBuffer = 1024

func newEventStream(c *Client, method string) *eventStream {
	return &eventStream{c: c, method: method, ch: make(chan deliver.Event, streamBuffer)}
}

// push enqueues an event without blocking; false means the buffer is
// full and the consumer must be evicted (the read loop cannot block, or
// one stalled stream would freeze every call on the connection). It
// holds es.mu across the send so a concurrent finish (which closes the
// channel under the same mutex) cannot race it into a send-on-closed
// panic; events racing a close are dropped.
func (es *eventStream) push(ev deliver.Event) bool {
	if ev == nil {
		return true
	}
	es.mu.Lock()
	defer es.mu.Unlock()
	if es.closed {
		return true
	}
	select {
	case es.ch <- ev:
		return true
	default:
		return false
	}
}

// finish records the terminal error and closes the event channel, under
// the same mutex push sends under.
func (es *eventStream) finish(err error) {
	es.mu.Lock()
	defer es.mu.Unlock()
	if es.closed {
		return
	}
	es.closed = true
	if err != nil && es.err == nil {
		es.err = err
	}
	close(es.ch)
}

// Events returns the ordered event channel; it closes when the stream
// ends.
func (es *eventStream) Events() <-chan deliver.Event { return es.ch }

// Err reports why the stream ended; nil while live or after a clean
// Close.
func (es *eventStream) Err() error {
	es.mu.Lock()
	defer es.mu.Unlock()
	if es.err == deliver.ErrClosed {
		return nil
	}
	return es.err
}

// Close cancels the stream server-side and releases it. Idempotent.
func (es *eventStream) Close() {
	es.mu.Lock()
	if es.closed {
		es.mu.Unlock()
		return
	}
	es.mu.Unlock()
	es.c.mu.Lock()
	delete(es.c.streams, es.id)
	es.c.mu.Unlock()
	es.c.cn.send(frame{Type: ftCancel, Codec: es.c.codec, Stream: es.id})
	es.finish(nil)
}
