package wire

import (
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Transport-wide counters and timings, shared by every connection in
// the process. Counters are atomics (the hot path must not take a lock
// per frame); the encode/decode histograms reuse metrics.Timings so
// fabricbench and peers render them like every other subsystem.
// node.StartPeer registers MetricsSnapshot as a peer metrics source, so
// the wire_* counters surface through peer.Metrics() beside statedb and
// dedup stats.
type wireStats struct {
	framesIn  atomic.Uint64
	framesOut atomic.Uint64
	bytesIn   atomic.Uint64
	bytesOut  atomic.Uint64

	encodes     atomic.Uint64
	decodes     atomic.Uint64
	encodeNanos atomic.Uint64
	decodeNanos atomic.Uint64

	poolHits   atomic.Uint64
	poolMisses atomic.Uint64

	batchFrames   atomic.Uint64
	batchedEvents atomic.Uint64
	jsonFallbacks atomic.Uint64
}

var stats wireStats

// timings holds the wire_encode / wire_decode latency histograms.
var timings metrics.Timings

func observeEncode(start time.Time) {
	d := time.Since(start)
	stats.encodes.Add(1)
	stats.encodeNanos.Add(uint64(d))
	timings.Observe(metrics.WireEncode, d)
}

func observeDecode(start time.Time) {
	d := time.Since(start)
	stats.decodes.Add(1)
	stats.decodeNanos.Add(uint64(d))
	timings.Observe(metrics.WireDecode, d)
}

// MetricsSnapshot returns the process-wide wire transport counters.
func MetricsSnapshot() map[string]uint64 {
	return map[string]uint64{
		metrics.WireFramesIn:      stats.framesIn.Load(),
		metrics.WireFramesOut:     stats.framesOut.Load(),
		metrics.WireBytesIn:       stats.bytesIn.Load(),
		metrics.WireBytesOut:      stats.bytesOut.Load(),
		metrics.WireEncodes:       stats.encodes.Load(),
		metrics.WireDecodes:       stats.decodes.Load(),
		metrics.WireEncodeNanos:   stats.encodeNanos.Load(),
		metrics.WireDecodeNanos:   stats.decodeNanos.Load(),
		metrics.WirePoolHits:      stats.poolHits.Load(),
		metrics.WirePoolMisses:    stats.poolMisses.Load(),
		metrics.WireBatchFrames:   stats.batchFrames.Load(),
		metrics.WireBatchedEvents: stats.batchedEvents.Load(),
		metrics.WireJSONFallbacks: stats.jsonFallbacks.Load(),
	}
}

// TimingsSnapshot returns the wire encode/decode latency histograms.
func TimingsSnapshot() map[string]metrics.HistogramSnapshot {
	return timings.Snapshot()
}
