package wire

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/deliver"
	"repro/internal/ledger"
	"repro/internal/rwset"
	"repro/internal/service"
	"repro/internal/snapshot"
)

// PeerClient speaks to a served peer and satisfies service.Peer, so a
// gateway (or reconciler) in another process uses it exactly like an
// in-process *peer.Peer.
type PeerClient struct {
	c    *Client
	info infoResponse
}

var _ service.Peer = (*PeerClient)(nil)

// NewPeerClient wraps an open connection to a peer server, fetching the
// peer's descriptor once so Name/Org/ChannelName answer locally.
func NewPeerClient(c *Client) (*PeerClient, error) {
	p := &PeerClient{c: c}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Call(ctx, "peer.info", nil, &p.info); err != nil {
		return nil, fmt.Errorf("wire: peer info: %w", err)
	}
	return p, nil
}

// Name returns the served peer's node name.
func (p *PeerClient) Name() string { return p.info.Name }

// Org returns the served peer's organization.
func (p *PeerClient) Org() string { return p.info.Org }

// ChannelName returns the channel the served peer serves.
func (p *PeerClient) ChannelName() string { return p.info.Channel }

// Close releases the underlying connection.
func (p *PeerClient) Close() { p.c.Close() }

// Endorse ships the proposal (transient map alongside, since proposal
// serialization excludes it) and returns the signed response.
func (p *PeerClient) Endorse(ctx context.Context, prop *ledger.Proposal) (*ledger.ProposalResponse, error) {
	var resp ledger.ProposalResponse
	err := p.c.Call(ctx, "peer.endorse", &endorseRequest{Proposal: prop, Transient: prop.Transient}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// SubscribeLive streams events for blocks committed after the call.
// Stream registration is acknowledged by the serving process before
// this returns — the ordering guarantee commit waiters rely on.
func (p *PeerClient) SubscribeLive() service.Stream {
	s, err := p.c.Stream(context.Background(), "peer.subscribe", &subscribeRequest{Live: true})
	if err != nil {
		return newDeadStream(err)
	}
	return s
}

// SubscribeFrom replays events from block number from, then follows
// live commits.
func (p *PeerClient) SubscribeFrom(from uint64) (service.Stream, error) {
	return p.c.Stream(context.Background(), "peer.subscribe", &subscribeRequest{From: from})
}

// FetchPrivateData pulls one transaction's private rwset of a
// collection — the reconciler's cross-process gossip substitute.
func (p *PeerClient) FetchPrivateData(ctx context.Context, txID, collection string) (*rwset.CollPvtRWSet, error) {
	var out *rwset.CollPvtRWSet
	if err := p.c.Call(ctx, "peer.pvt", &pvtRequest{TxID: txID, Collection: collection}, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// PushPrivateData deposits a disseminated private set into the served
// peer's transient store — the cross-process leg of gossip
// dissemination at endorsement time.
func (p *PeerClient) PushPrivateData(ctx context.Context, set *rwset.TxPvtRWSet) error {
	return p.c.Call(ctx, "peer.pvtpush", set, nil)
}

// Info re-fetches the served peer's descriptor (height and state hash
// are point-in-time; cluster tests poll them for convergence).
func (p *PeerClient) Info(ctx context.Context) (*infoResponse, error) {
	var info infoResponse
	if err := p.c.Call(ctx, "peer.info", nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Height returns the served peer's current chain height.
func (p *PeerClient) Height(ctx context.Context) (uint64, error) {
	info, err := p.Info(ctx)
	if err != nil {
		return 0, err
	}
	return info.Height, nil
}

// StateHash returns the served peer's world-state hash (hex).
func (p *PeerClient) StateHash(ctx context.Context) (string, error) {
	info, err := p.Info(ctx)
	if err != nil {
		return "", err
	}
	return info.StateHash, nil
}

// FetchSnapshot downloads a complete snapshot artifact from the served
// peer into dir (which must not exist yet): peer.snapshot.meta triggers
// an export and returns its manifest, peer.snapshot.chunks streams the
// chunk files in manifest order. Every byte lands verbatim, so the
// artifact's hashes — manifest self-hash, chunk SHA-256s, record CRCs —
// verify at InstallSnapshot exactly as they would on a local copy. The
// download is staged in dir+".partial" and published by rename, so a
// dropped connection never leaves a half-written artifact under dir.
func (p *PeerClient) FetchSnapshot(ctx context.Context, dir string) (*snapshot.Manifest, error) {
	fail := func(err error) (*snapshot.Manifest, error) {
		return nil, fmt.Errorf("wire: fetch snapshot: %w", err)
	}
	if _, err := os.Stat(dir); err == nil {
		return fail(fmt.Errorf("%s already exists", dir))
	}
	var meta snapshotMetaResponse
	if err := p.c.Call(ctx, "peer.snapshot.meta", nil, &meta); err != nil {
		return nil, err
	}
	// Parse (and self-hash-verify) before spending bandwidth on chunks.
	m, err := snapshot.ParseManifest(meta.Manifest)
	if err != nil {
		return fail(err)
	}
	tmp := dir + ".partial"
	if err := os.RemoveAll(tmp); err != nil {
		return fail(err)
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return fail(err)
	}
	cleanup := func() { os.RemoveAll(tmp) }
	stream, err := p.c.Stream(ctx, "peer.snapshot.chunks", &snapshotChunksRequest{Export: meta.Export})
	if err != nil {
		cleanup()
		return nil, err
	}
	defer stream.Close()
	for i, ci := range m.Chunks {
		var chunk *SnapshotChunkEvent
		for chunk == nil {
			select {
			case ev, ok := <-stream.Events():
				if !ok {
					cleanup()
					return fail(fmt.Errorf("chunk stream ended at %d of %d: %w", i, len(m.Chunks), stream.Err()))
				}
				chunk, _ = ev.(*SnapshotChunkEvent)
			case <-ctx.Done():
				cleanup()
				return fail(ctx.Err())
			}
		}
		if chunk.Index != uint64(i) || chunk.Name != ci.Name {
			cleanup()
			return fail(fmt.Errorf("chunk %d: got %q (index %d), want %q", i, chunk.Name, chunk.Index, ci.Name))
		}
		if err := os.WriteFile(filepath.Join(tmp, ci.Name), chunk.Data, 0o644); err != nil {
			cleanup()
			return fail(err)
		}
	}
	// The manifest lands last: a .partial directory with a manifest is a
	// complete download.
	if err := os.WriteFile(filepath.Join(tmp, snapshot.ManifestName), meta.Manifest, 0o644); err != nil {
		cleanup()
		return fail(err)
	}
	if err := os.Rename(tmp, dir); err != nil {
		cleanup()
		return fail(err)
	}
	return m, nil
}

// deadStream is returned when a SubscribeLive call fails — the
// interface has no error return, so the failure surfaces through Err()
// on an already-ended stream (gateway.SubmitAssembledAsync checks it
// right after subscribing).
type deadStream struct {
	err error
	ch  chan deliver.Event
}

func newDeadStream(err error) *deadStream {
	ch := make(chan deliver.Event)
	close(ch)
	return &deadStream{err: err, ch: ch}
}

func (d *deadStream) Events() <-chan deliver.Event { return d.ch }
func (d *deadStream) Err() error                   { return d.err }
func (d *deadStream) Close()                       {}

// OrdererClient speaks to a served orderer and satisfies
// service.Orderer.
type OrdererClient struct {
	c *Client
}

var _ service.Orderer = (*OrdererClient)(nil)

// NewOrdererClient wraps an open connection to an orderer server.
func NewOrdererClient(c *Client) *OrdererClient { return &OrdererClient{c: c} }

// Close releases the underlying connection.
func (o *OrdererClient) Close() { o.c.Close() }

// Order submits the transaction's canonical bytes and returns once the
// remote orderer accepted it into a cut block.
func (o *OrdererClient) Order(ctx context.Context, tx *ledger.Transaction) error {
	return o.c.Call(ctx, "order.submit", &orderRequest{Tx: tx.Bytes()}, nil)
}

// InPending reports whether the transaction sits in the remote
// orderer's current partial batch.
func (o *OrdererClient) InPending(txID string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var resp inPendingResponse
	if err := o.c.Call(ctx, "order.inpending", &txIDRequest{TxID: txID}, &resp); err != nil {
		return false
	}
	return resp.Pending
}

// FlushTx cuts the remote partial batch if it still holds the
// transaction.
func (o *OrdererClient) FlushTx(txID string) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	o.c.Call(ctx, "order.flushtx", &txIDRequest{TxID: txID}, nil)
}

// Blocks streams ordered blocks from number `from` — the peer
// processes' block-follow feed.
func (o *OrdererClient) Blocks(ctx context.Context, from uint64) (service.Stream, error) {
	return o.c.Stream(ctx, "order.blocks", &blocksRequest{From: from})
}

// GatewayClient speaks to a served gateway and satisfies
// service.Gateway: the loadgen harness drives remote fleets through it.
type GatewayClient struct {
	c *Client
}

var _ service.Gateway = (*GatewayClient)(nil)

// NewGatewayClient wraps an open connection to a gateway server.
func NewGatewayClient(c *Client) *GatewayClient { return &GatewayClient{c: c} }

// Close releases the underlying connection.
func (g *GatewayClient) Close() { g.c.Close() }

// RPCStats exposes the underlying connection's per-method call and
// byte counters, so benchmarks can report wire cost per RPC.
func (g *GatewayClient) RPCStats() map[string]RPCStat { return g.c.RPCStats() }

// Evaluate runs a query through the remote gateway.
func (g *GatewayClient) Evaluate(ctx context.Context, req *service.InvokeRequest) ([]byte, error) {
	var resp evaluateResponse
	if err := g.c.Call(ctx, "gw.evaluate", req, &resp); err != nil {
		return nil, err
	}
	return resp.Payload, nil
}

// Submit drives the full endorse → order → commit-wait flow remotely.
func (g *GatewayClient) Submit(ctx context.Context, req *service.InvokeRequest) (*service.SubmitResult, error) {
	var res service.SubmitResult
	if err := g.c.Call(ctx, "gw.submit", req, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// SubmitAsync endorses and orders remotely, returning a handle whose
// Status/Close round-trip to the serving gateway (the commit wait —
// and its deliver subscription — stay server-side).
func (g *GatewayClient) SubmitAsync(ctx context.Context, req *service.InvokeRequest) (service.Commit, error) {
	var resp submitAsyncResponse
	if err := g.c.Call(ctx, "gw.submitasync", req, &resp); err != nil {
		return nil, err
	}
	return &RemoteCommit{g: g, handle: resp.Handle, txID: resp.TxID}, nil
}

// RemoteCommit is a commit handle living in the serving gateway's
// process; it satisfies service.Commit.
type RemoteCommit struct {
	g      *GatewayClient
	handle uint64
	txID   string
}

var _ service.Commit = (*RemoteCommit)(nil)

// TxID returns the pending transaction's ID.
func (r *RemoteCommit) TxID() string { return r.txID }

// Status blocks until the remote commit wait resolves.
func (r *RemoteCommit) Status(ctx context.Context) (*service.SubmitResult, error) {
	var res service.SubmitResult
	if err := r.g.c.Call(ctx, "gw.status", &handleRequest{Handle: r.handle}, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Close releases the server-side handle. Idempotent.
func (r *RemoteCommit) Close() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	r.g.c.Call(ctx, "gw.close", &handleRequest{Handle: r.handle}, nil)
}
