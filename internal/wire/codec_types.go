package wire

import (
	"time"

	"repro/internal/deliver"
	"repro/internal/ledger"
	"repro/internal/rwset"
	"repro/internal/service"
	"repro/internal/statedb"
)

// This file is the binary codec's type catalogue: positional
// encoders/decoders for the frame envelopes and every hot RPC body.
// Field order is the format — docs/WIRE.md documents each layout. A
// type absent from binMarshal's switch transparently travels as JSON
// (see marshalBody), so adding a type here is an optimization, never a
// compatibility requirement.

// binMarshal encodes v into a pooled buffer. ok reports whether the
// binary codec knows v's type.
func binMarshal(v any) (data []byte, ok bool) {
	b := getBuf(256)
	switch t := v.(type) {
	case *request:
		b = appRequest(b, t)
	case *response:
		b = appResponse(b, t)
	case *event:
		b = appEvent(b, t)
	case *endorseRequest:
		b = appEndorseRequest(b, t)
	case *subscribeRequest:
		b = appSubscribeRequest(b, t)
	case *pvtRequest:
		b = appPvtRequest(b, t)
	case *infoResponse:
		b = appInfoResponse(b, t)
	case *orderRequest:
		b = appOrderRequest(b, t)
	case *txIDRequest:
		b = appTxIDRequest(b, t)
	case *inPendingResponse:
		b = appInPendingResponse(b, t)
	case *blocksRequest:
		b = appBlocksRequest(b, t)
	case *evaluateResponse:
		b = appEvaluateResponse(b, t)
	case *submitAsyncResponse:
		b = appSubmitAsyncResponse(b, t)
	case *handleRequest:
		b = appHandleRequest(b, t)
	case *snapshotMetaResponse:
		b = appSnapshotMetaResponse(b, t)
	case *snapshotChunksRequest:
		b = appSnapshotChunksRequest(b, t)
	case *rwset.TxPvtRWSet:
		b = appTxPvtRWSet(b, t)
	case *rwset.CollPvtRWSet:
		b = appCollPvtRWSetPtr(b, t)
	case *service.InvokeRequest:
		b = appInvokeRequest(b, t)
	case *service.SubmitResult:
		b = appSubmitResult(b, t)
	case *ledger.ProposalResponse:
		b = appProposalResponse(b, t)
	default:
		putBuf(b)
		return nil, false
	}
	return b, true
}

// binUnmarshal decodes data into v. ok reports whether the binary codec
// knows v's type; when ok, err is the decode outcome. Decoding into a
// value target from a nil (presence-0) encoding leaves the target's
// zero value, mirroring json.Unmarshal of "null".
func binUnmarshal(data []byte, v any) (ok bool, err error) {
	r := &binReader{b: data}
	switch t := v.(type) {
	case *request:
		if p := readRequest(r); p != nil {
			*t = *p
		}
	case *response:
		if p := readResponse(r); p != nil {
			*t = *p
		}
	case *event:
		if p := readEvent(r); p != nil {
			*t = *p
		}
	case *endorseRequest:
		if r.presence() {
			t.Proposal = readProposal(r)
			t.Transient = r.byteMap()
		}
	case *subscribeRequest:
		if r.presence() {
			t.From = r.uvarint()
			t.Live = r.bool()
		}
	case *pvtRequest:
		if r.presence() {
			t.TxID = r.str()
			t.Collection = r.str()
		}
	case *infoResponse:
		if r.presence() {
			t.Name = r.str()
			t.Org = r.str()
			t.Channel = r.str()
			t.Height = r.uvarint()
			t.StateHash = r.str()
			t.Base = r.uvarint()
		}
	case *orderRequest:
		if r.presence() {
			t.Tx = r.byteSlice()
		}
	case *txIDRequest:
		if r.presence() {
			t.TxID = r.str()
		}
	case *inPendingResponse:
		if r.presence() {
			t.Pending = r.bool()
		}
	case *blocksRequest:
		if r.presence() {
			t.From = r.uvarint()
		}
	case *evaluateResponse:
		if r.presence() {
			t.Payload = r.byteSlice()
		}
	case *submitAsyncResponse:
		if r.presence() {
			t.Handle = r.uvarint()
			t.TxID = r.str()
		}
	case *handleRequest:
		if r.presence() {
			t.Handle = r.uvarint()
		}
	case *snapshotMetaResponse:
		if r.presence() {
			t.Export = r.uvarint()
			t.Manifest = r.byteSlice()
		}
	case *snapshotChunksRequest:
		if r.presence() {
			t.Export = r.uvarint()
		}
	case *rwset.TxPvtRWSet:
		if p := readTxPvtRWSet(r); p != nil {
			*t = *p
		}
	case **rwset.CollPvtRWSet:
		*t = readCollPvtRWSetPtr(r)
	case *rwset.CollPvtRWSet:
		if p := readCollPvtRWSetPtr(r); p != nil {
			*t = *p
		}
	case *service.InvokeRequest:
		if r.presence() {
			t.Channel = r.str()
			t.Chaincode = r.str()
			t.Function = r.str()
			t.Args = r.strings()
			t.Transient = r.byteMap()
			t.Endorsers = r.strings()
			t.EndorsersSet = r.bool()
		}
	case *service.SubmitResult:
		if p := readSubmitResult(r); p != nil {
			*t = *p
		}
	case *ledger.ProposalResponse:
		if p := readProposalResponse(r); p != nil {
			*t = *p
		}
	default:
		return false, nil
	}
	return true, r.done()
}

// presence reads a pointer-presence marker.
func (r *binReader) presence() bool { return r.bool() }

func appPresence(b []byte, present bool) []byte { return appendBool(b, present) }

// --- envelopes -------------------------------------------------------

func appRequest(b []byte, v *request) []byte {
	b = appPresence(b, v != nil)
	if v == nil {
		return b
	}
	b = appendString(b, v.Method)
	b = appendVarint(b, v.Deadline)
	return appendByteSlice(b, v.Body)
}

func readRequest(r *binReader) *request {
	if !r.presence() {
		return nil
	}
	return &request{
		Method:   r.str(),
		Deadline: r.varint(),
		Body:     r.byteSliceAlias(),
	}
}

func appResponse(b []byte, v *response) []byte {
	b = appPresence(b, v != nil)
	if v == nil {
		return b
	}
	b = appPresence(b, v.Err != nil)
	if v.Err != nil {
		b = appendString(b, v.Err.Code)
		b = appendString(b, v.Err.Message)
		b = appendVarint(b, v.Err.RetryAfterMs)
	}
	b = appendByteSlice(b, v.Body)
	return appendBool(b, v.More)
}

func readResponse(r *binReader) *response {
	if !r.presence() {
		return nil
	}
	v := &response{}
	if r.presence() {
		v.Err = &WireError{
			Code:         r.str(),
			Message:      r.str(),
			RetryAfterMs: r.varint(),
		}
	}
	v.Body = r.byteSliceAlias()
	v.More = r.bool()
	return v
}

// Event union tags.
const (
	evTagNone   = 0
	evTagBlock  = 1
	evTagStatus = 2
	evTagChunk  = 3
)

func appEvent(b []byte, v *event) []byte {
	b = appPresence(b, v != nil)
	if v == nil {
		return b
	}
	switch {
	case v.Block != nil:
		b = append(b, evTagBlock)
		b = appendUvarint(b, v.Block.Number)
		b = appBlock(b, v.Block.Block)
		b = appendBool(b, v.Block.Replayed)
	case v.Status != nil:
		b = append(b, evTagStatus)
		b = appTxStatusEvent(b, v.Status)
	case v.Chunk != nil:
		b = append(b, evTagChunk)
		b = appendUvarint(b, v.Chunk.Index)
		b = appendString(b, v.Chunk.Name)
		b = appendByteSlice(b, v.Chunk.Data)
	default:
		b = append(b, evTagNone)
	}
	return b
}

func readEvent(r *binReader) *event {
	if !r.presence() {
		return nil
	}
	if r.err != nil || r.remaining() < 1 {
		r.fail("event tag")
		return nil
	}
	tag := r.b[r.off]
	r.off++
	v := &event{}
	switch tag {
	case evTagBlock:
		v.Block = &deliver.BlockEvent{
			Number:   r.uvarint(),
			Block:    readBlock(r),
			Replayed: r.bool(),
		}
	case evTagStatus:
		v.Status = readTxStatusEvent(r)
	case evTagChunk:
		v.Chunk = &SnapshotChunkEvent{
			Index: r.uvarint(),
			Name:  r.str(),
			Data:  r.byteSlice(),
		}
	case evTagNone:
	default:
		r.fail("event tag")
		return nil
	}
	return v
}

func appTxStatusEvent(b []byte, v *deliver.TxStatusEvent) []byte {
	b = appendUvarint(b, v.BlockNum)
	b = appendVarint(b, int64(v.TxIndex))
	b = appendString(b, v.TxID)
	b = appendVarint(b, int64(v.Code))
	b = appendString(b, v.Detail)
	b = appendStrings(b, v.MissingCollections)
	b = appChaincodeEvent(b, v.ChaincodeEvent)
	return appendBool(b, v.Replayed)
}

func readTxStatusEvent(r *binReader) *deliver.TxStatusEvent {
	return &deliver.TxStatusEvent{
		BlockNum:           r.uvarint(),
		TxIndex:            int(r.varint()),
		TxID:               r.str(),
		Code:               ledger.ValidationCode(r.varint()),
		Detail:             r.str(),
		MissingCollections: r.strings(),
		ChaincodeEvent:     readChaincodeEvent(r),
		Replayed:           r.bool(),
	}
}

// --- ledger ----------------------------------------------------------

// appBlock encodes a block. Transactions travel as their canonical
// serialization (ledger.Transaction.Bytes(), memoized JSON): encoding
// is a copy of already-computed bytes, and decoding through
// ledger.ParseTransaction seeds the far side's cache with the identical
// canonical form — the block data hash, and therefore the state hash,
// is byte-identical across processes by construction.
func appBlock(b []byte, v *ledger.Block) []byte {
	b = appPresence(b, v != nil)
	if v == nil {
		return b
	}
	b = appendUvarint(b, v.Header.Number)
	b = appendByteSlice(b, v.Header.PrevHash)
	b = appendByteSlice(b, v.Header.DataHash)
	b = appendCount(b, len(v.Transactions), v.Transactions == nil)
	for _, tx := range v.Transactions {
		if tx == nil {
			b = append(b, 0)
			continue
		}
		b = appendByteSlice(b, tx.Bytes())
	}
	b = appendCount(b, len(v.Metadata.ValidationFlags), v.Metadata.ValidationFlags == nil)
	for _, f := range v.Metadata.ValidationFlags {
		b = appendVarint(b, int64(f))
	}
	return b
}

func readBlock(r *binReader) *ledger.Block {
	if !r.presence() {
		return nil
	}
	v := &ledger.Block{}
	v.Header.Number = r.uvarint()
	v.Header.PrevHash = r.byteSlice()
	v.Header.DataHash = r.byteSlice()
	if n := r.count(); n >= 0 && r.err == nil {
		v.Transactions = make([]*ledger.Transaction, 0, n)
		for i := 0; i < n; i++ {
			raw := r.byteSliceAlias()
			if r.err != nil {
				return nil
			}
			if raw == nil {
				v.Transactions = append(v.Transactions, nil)
				continue
			}
			tx, err := ledger.ParseTransaction(raw)
			if err != nil {
				r.setErr(err)
				return nil
			}
			v.Transactions = append(v.Transactions, tx)
		}
	}
	if n := r.count(); n >= 0 && r.err == nil {
		v.Metadata.ValidationFlags = make([]ledger.ValidationCode, n)
		for i := range v.Metadata.ValidationFlags {
			v.Metadata.ValidationFlags[i] = ledger.ValidationCode(r.varint())
		}
	}
	return v
}

func appChaincodeEvent(b []byte, v *ledger.ChaincodeEvent) []byte {
	b = appPresence(b, v != nil)
	if v == nil {
		return b
	}
	b = appendString(b, v.Name)
	return appendByteSlice(b, v.Payload)
}

func readChaincodeEvent(r *binReader) *ledger.ChaincodeEvent {
	if !r.presence() {
		return nil
	}
	return &ledger.ChaincodeEvent{Name: r.str(), Payload: r.byteSlice()}
}

// appProposal excludes the transient map, exactly as the JSON form does
// (`json:"-"`): confidential inputs never ride inside a proposal.
func appProposal(b []byte, v *ledger.Proposal) []byte {
	b = appPresence(b, v != nil)
	if v == nil {
		return b
	}
	b = appendString(b, v.TxID)
	b = appendString(b, v.ChannelID)
	b = appendString(b, v.Chaincode)
	b = appendString(b, v.Function)
	b = appendStrings(b, v.Args)
	b = appendByteSlice(b, v.Creator)
	return appendByteSlice(b, v.Nonce)
}

func readProposal(r *binReader) *ledger.Proposal {
	if !r.presence() {
		return nil
	}
	return &ledger.Proposal{
		TxID:      r.str(),
		ChannelID: r.str(),
		Chaincode: r.str(),
		Function:  r.str(),
		Args:      r.strings(),
		Creator:   r.byteSlice(),
		Nonce:     r.byteSlice(),
	}
}

func appProposalResponse(b []byte, v *ledger.ProposalResponse) []byte {
	b = appPresence(b, v != nil)
	if v == nil {
		return b
	}
	b = appendByteSlice(b, v.Payload)
	b = appendByteSlice(b, v.PlainPayload)
	b = appendVarint(b, int64(v.Response.Status))
	b = appendString(b, v.Response.Message)
	b = appendByteSlice(b, v.Response.Payload)
	b = appendByteSlice(b, v.Endorsement.Endorser)
	return appendByteSlice(b, v.Endorsement.Signature)
}

func readProposalResponse(r *binReader) *ledger.ProposalResponse {
	if !r.presence() {
		return nil
	}
	v := &ledger.ProposalResponse{}
	v.Payload = r.byteSlice()
	v.PlainPayload = r.byteSlice()
	v.Response.Status = int32(r.varint())
	v.Response.Message = r.str()
	v.Response.Payload = r.byteSlice()
	v.Endorsement.Endorser = r.byteSlice()
	v.Endorsement.Signature = r.byteSlice()
	return v
}

// --- rwset -----------------------------------------------------------

func appCollPvtRWSet(b []byte, v *rwset.CollPvtRWSet) []byte {
	b = appendString(b, v.Collection)
	b = appendCount(b, len(v.Reads), v.Reads == nil)
	for _, rd := range v.Reads {
		b = appendString(b, rd.Key)
		b = appendUvarint(b, uint64(rd.Version))
	}
	b = appendCount(b, len(v.Writes), v.Writes == nil)
	for _, w := range v.Writes {
		b = appendString(b, w.Key)
		b = appendByteSlice(b, w.Value)
		b = appendBool(b, w.IsDelete)
	}
	return b
}

func readCollPvtRWSet(r *binReader) rwset.CollPvtRWSet {
	v := rwset.CollPvtRWSet{Collection: r.str()}
	if n := r.count(); n >= 0 && r.err == nil {
		v.Reads = make([]rwset.KVRead, n)
		for i := range v.Reads {
			v.Reads[i] = rwset.KVRead{Key: r.str(), Version: statedb.Version(r.uvarint())}
		}
	}
	if n := r.count(); n >= 0 && r.err == nil {
		v.Writes = make([]rwset.KVWrite, n)
		for i := range v.Writes {
			v.Writes[i] = rwset.KVWrite{Key: r.str(), Value: r.byteSlice(), IsDelete: r.bool()}
		}
	}
	return v
}

// appCollPvtRWSetPtr adds the presence marker peer.pvt needs: "no such
// private data" travels as nil (JSON null).
func appCollPvtRWSetPtr(b []byte, v *rwset.CollPvtRWSet) []byte {
	b = appPresence(b, v != nil)
	if v == nil {
		return b
	}
	return appCollPvtRWSet(b, v)
}

func readCollPvtRWSetPtr(r *binReader) *rwset.CollPvtRWSet {
	if !r.presence() {
		return nil
	}
	v := readCollPvtRWSet(r)
	return &v
}

func appTxPvtRWSet(b []byte, v *rwset.TxPvtRWSet) []byte {
	b = appPresence(b, v != nil)
	if v == nil {
		return b
	}
	b = appendString(b, v.TxID)
	b = appendCount(b, len(v.CollSets), v.CollSets == nil)
	for i := range v.CollSets {
		b = appCollPvtRWSet(b, &v.CollSets[i])
	}
	return b
}

func readTxPvtRWSet(r *binReader) *rwset.TxPvtRWSet {
	if !r.presence() {
		return nil
	}
	v := &rwset.TxPvtRWSet{TxID: r.str()}
	if n := r.count(); n >= 0 && r.err == nil {
		v.CollSets = make([]rwset.CollPvtRWSet, n)
		for i := range v.CollSets {
			v.CollSets[i] = readCollPvtRWSet(r)
		}
	}
	return v
}

// --- service ---------------------------------------------------------

func appInvokeRequest(b []byte, v *service.InvokeRequest) []byte {
	b = appPresence(b, v != nil)
	if v == nil {
		return b
	}
	b = appendString(b, v.Channel)
	b = appendString(b, v.Chaincode)
	b = appendString(b, v.Function)
	b = appendStrings(b, v.Args)
	b = appendByteMap(b, v.Transient)
	b = appendStrings(b, v.Endorsers)
	return appendBool(b, v.EndorsersSet)
}

func appSubmitResult(b []byte, v *service.SubmitResult) []byte {
	b = appPresence(b, v != nil)
	if v == nil {
		return b
	}
	b = appendString(b, v.TxID)
	b = appendByteSlice(b, v.Payload)
	b = appendVarint(b, int64(v.Code))
	b = appendString(b, v.Detail)
	b = appendUvarint(b, v.BlockNum)
	b = appChaincodeEvent(b, v.Event)
	b = appendStrings(b, v.MissingCollections)
	return appendVarint(b, int64(v.CommitWait))
}

func readSubmitResult(r *binReader) *service.SubmitResult {
	if !r.presence() {
		return nil
	}
	v := &service.SubmitResult{}
	v.TxID = r.str()
	v.Payload = r.byteSlice()
	v.Code = ledger.ValidationCode(r.varint())
	v.Detail = r.str()
	v.BlockNum = r.uvarint()
	v.Event = readChaincodeEvent(r)
	v.MissingCollections = r.strings()
	v.CommitWait = time.Duration(r.varint())
	return v
}

// --- RPC bodies ------------------------------------------------------

func appEndorseRequest(b []byte, v *endorseRequest) []byte {
	b = appPresence(b, v != nil)
	if v == nil {
		return b
	}
	b = appProposal(b, v.Proposal)
	return appendByteMap(b, v.Transient)
}

func appSubscribeRequest(b []byte, v *subscribeRequest) []byte {
	b = appPresence(b, v != nil)
	if v == nil {
		return b
	}
	b = appendUvarint(b, v.From)
	return appendBool(b, v.Live)
}

func appPvtRequest(b []byte, v *pvtRequest) []byte {
	b = appPresence(b, v != nil)
	if v == nil {
		return b
	}
	b = appendString(b, v.TxID)
	return appendString(b, v.Collection)
}

func appInfoResponse(b []byte, v *infoResponse) []byte {
	b = appPresence(b, v != nil)
	if v == nil {
		return b
	}
	b = appendString(b, v.Name)
	b = appendString(b, v.Org)
	b = appendString(b, v.Channel)
	b = appendUvarint(b, v.Height)
	b = appendString(b, v.StateHash)
	return appendUvarint(b, v.Base)
}

func appOrderRequest(b []byte, v *orderRequest) []byte {
	b = appPresence(b, v != nil)
	if v == nil {
		return b
	}
	return appendByteSlice(b, v.Tx)
}

func appTxIDRequest(b []byte, v *txIDRequest) []byte {
	b = appPresence(b, v != nil)
	if v == nil {
		return b
	}
	return appendString(b, v.TxID)
}

func appInPendingResponse(b []byte, v *inPendingResponse) []byte {
	b = appPresence(b, v != nil)
	if v == nil {
		return b
	}
	return appendBool(b, v.Pending)
}

func appBlocksRequest(b []byte, v *blocksRequest) []byte {
	b = appPresence(b, v != nil)
	if v == nil {
		return b
	}
	return appendUvarint(b, v.From)
}

func appEvaluateResponse(b []byte, v *evaluateResponse) []byte {
	b = appPresence(b, v != nil)
	if v == nil {
		return b
	}
	return appendByteSlice(b, v.Payload)
}

func appSubmitAsyncResponse(b []byte, v *submitAsyncResponse) []byte {
	b = appPresence(b, v != nil)
	if v == nil {
		return b
	}
	b = appendUvarint(b, v.Handle)
	return appendString(b, v.TxID)
}

func appHandleRequest(b []byte, v *handleRequest) []byte {
	b = appPresence(b, v != nil)
	if v == nil {
		return b
	}
	return appendUvarint(b, v.Handle)
}

func appSnapshotMetaResponse(b []byte, v *snapshotMetaResponse) []byte {
	b = appPresence(b, v != nil)
	if v == nil {
		return b
	}
	b = appendUvarint(b, v.Export)
	return appendByteSlice(b, v.Manifest)
}

func appSnapshotChunksRequest(b []byte, v *snapshotChunksRequest) []byte {
	b = appPresence(b, v != nil)
	if v == nil {
		return b
	}
	return appendUvarint(b, v.Export)
}
