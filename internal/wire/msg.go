package wire

import (
	"encoding/json"

	"repro/internal/deliver"
	"repro/internal/ledger"
	"repro/internal/service"
)

// request is the payload of an ftRequest frame.
type request struct {
	// Method names the RPC, e.g. "peer.endorse".
	Method string `json:"method"`
	// Deadline is the caller's context deadline in Unix nanoseconds;
	// zero means none. The server re-derives a context from it, so
	// deadlines propagate across the process boundary.
	Deadline int64 `json:"deadline,omitempty"`
	// Body is the method-specific request struct.
	Body json.RawMessage `json:"body,omitempty"`
}

// response is the payload of an ftResponse frame. For unary calls it is
// terminal. For streams, the first response with More set acknowledges
// that the server registered the subscription (events may follow), and
// a later response without More ends the stream, carrying the reason in
// Err.
type response struct {
	Err  *WireError      `json:"err,omitempty"`
	Body json.RawMessage `json:"body,omitempty"`
	More bool            `json:"more,omitempty"`
}

// WireError is the serialized form of a call error. Code maps back to
// the originating package's sentinel on the client so errors.Is works
// across the process boundary; RetryAfterMs carries the admission
// controller's backpressure hint through gateway overload errors.
type WireError struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

// event is the payload of an ftEvent frame: exactly one of the fields
// is set — the two deliver event kinds, or a snapshot chunk on a
// peer.snapshot.chunks stream.
type event struct {
	Block  *deliver.BlockEvent    `json:"block,omitempty"`
	Status *deliver.TxStatusEvent `json:"status,omitempty"`
	Chunk  *SnapshotChunkEvent    `json:"chunk,omitempty"`
}

// decode returns the deliver.Event the frame carries.
func (e *event) decode() deliver.Event {
	if e.Block != nil {
		return e.Block
	}
	if e.Status != nil {
		return e.Status
	}
	if e.Chunk != nil {
		return e.Chunk
	}
	return nil
}

// RPC request/response bodies. Kept together so docs/WIRE.md's RPC
// catalogue has a single source of truth.

// endorseRequest carries a proposal for peer.endorse. The transient map
// travels beside the proposal because Proposal.Transient is explicitly
// excluded from serialization (it must never enter a transaction); the
// endorsing peer reattaches it before simulation.
type endorseRequest struct {
	Proposal  *ledger.Proposal  `json:"proposal"`
	Transient map[string][]byte `json:"transient,omitempty"`
}

// subscribeRequest opens a peer.subscribe deliver stream.
type subscribeRequest struct {
	From uint64 `json:"from"`
	// Live selects SubscribeLive (From ignored) over SubscribeFrom.
	Live bool `json:"live,omitempty"`
}

// pvtRequest asks a peer for one transaction's private rwset of a
// collection (the reconciler's pull).
type pvtRequest struct {
	TxID       string `json:"tx_id"`
	Collection string `json:"collection"`
}

// infoResponse describes a serving peer; the wire client caches it at
// connect time to answer Name/Org/ChannelName locally, and cluster
// tests use Height/StateHash for convergence checks.
type infoResponse struct {
	Name      string `json:"name"`
	Org       string `json:"org"`
	Channel   string `json:"channel"`
	Height    uint64 `json:"height"`
	StateHash string `json:"state_hash"`
	// Base is the peer's chain base: 0 for a genesis-replay peer, the
	// snapshot height for a peer bootstrapped via InstallSnapshot.
	Base uint64 `json:"base,omitempty"`
}

// orderRequest submits a serialized transaction (ledger.Transaction
// canonical bytes) for ordering.
type orderRequest struct {
	Tx []byte `json:"tx"`
}

// txIDRequest names a transaction for order.inpending / order.flushtx.
type txIDRequest struct {
	TxID string `json:"tx_id"`
}

// inPendingResponse reports order.inpending's verdict.
type inPendingResponse struct {
	Pending bool `json:"pending"`
}

// blocksRequest opens an order.blocks stream from block number From.
type blocksRequest struct {
	From uint64 `json:"from"`
}

// snapshotMetaResponse answers peer.snapshot.meta: the manifest of a
// freshly exported snapshot — the raw MANIFEST.json bytes, shipped
// verbatim so the artifact's self-hash verifies end to end — plus the
// export handle a peer.snapshot.chunks stream is keyed by.
type snapshotMetaResponse struct {
	Export   uint64 `json:"export"`
	Manifest []byte `json:"manifest"`
}

// snapshotChunksRequest opens a peer.snapshot.chunks stream replaying
// one export's chunk files in manifest order.
type snapshotChunksRequest struct {
	Export uint64 `json:"export"`
}

// SnapshotChunkEvent carries one snapshot chunk file, byte for byte as
// written by the exporter, so the manifest's chunk hashes hold at the
// receiver. It rides the event union of a peer.snapshot.chunks stream.
type SnapshotChunkEvent struct {
	// Index is the chunk's position in the manifest's chunk list.
	Index uint64 `json:"index"`
	// Name is the chunk's file name inside the artifact directory.
	Name string `json:"name"`
	// Data is the verbatim chunk file content.
	Data []byte `json:"data"`
}

// BlockNumber implements deliver.Event; for a chunk it is the artifact
// position, letting chunk streams reuse the event plumbing.
func (e *SnapshotChunkEvent) BlockNumber() uint64 { return e.Index }

// evaluateResponse carries gw.evaluate's query payload.
type evaluateResponse struct {
	Payload []byte `json:"payload,omitempty"`
}

// submitAsyncResponse hands back a server-side commit handle.
type submitAsyncResponse struct {
	Handle uint64 `json:"handle"`
	TxID   string `json:"tx_id"`
}

// handleRequest names a commit handle for gw.status / gw.close.
type handleRequest struct {
	Handle uint64 `json:"handle"`
}

// Compile-time guarantee that the request/response structs the protocol
// shares with the service layer stay marshalable.
var (
	_ = service.InvokeRequest{}
	_ = service.SubmitResult{}
)
