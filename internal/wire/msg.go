package wire

import (
	"encoding/json"

	"repro/internal/deliver"
	"repro/internal/ledger"
	"repro/internal/service"
)

// request is the payload of an ftRequest frame.
type request struct {
	// Method names the RPC, e.g. "peer.endorse".
	Method string `json:"method"`
	// Deadline is the caller's context deadline in Unix nanoseconds;
	// zero means none. The server re-derives a context from it, so
	// deadlines propagate across the process boundary.
	Deadline int64 `json:"deadline,omitempty"`
	// Body is the method-specific request struct.
	Body json.RawMessage `json:"body,omitempty"`
}

// response is the payload of an ftResponse frame. For unary calls it is
// terminal. For streams, the first response with More set acknowledges
// that the server registered the subscription (events may follow), and
// a later response without More ends the stream, carrying the reason in
// Err.
type response struct {
	Err  *WireError      `json:"err,omitempty"`
	Body json.RawMessage `json:"body,omitempty"`
	More bool            `json:"more,omitempty"`
}

// WireError is the serialized form of a call error. Code maps back to
// the originating package's sentinel on the client so errors.Is works
// across the process boundary; RetryAfterMs carries the admission
// controller's backpressure hint through gateway overload errors.
type WireError struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

// event is the payload of an ftEvent frame: exactly one of the fields
// is set, mirroring the two deliver event kinds.
type event struct {
	Block  *deliver.BlockEvent    `json:"block,omitempty"`
	Status *deliver.TxStatusEvent `json:"status,omitempty"`
}

// decode returns the deliver.Event the frame carries.
func (e *event) decode() deliver.Event {
	if e.Block != nil {
		return e.Block
	}
	if e.Status != nil {
		return e.Status
	}
	return nil
}

// RPC request/response bodies. Kept together so docs/WIRE.md's RPC
// catalogue has a single source of truth.

// endorseRequest carries a proposal for peer.endorse. The transient map
// travels beside the proposal because Proposal.Transient is explicitly
// excluded from serialization (it must never enter a transaction); the
// endorsing peer reattaches it before simulation.
type endorseRequest struct {
	Proposal  *ledger.Proposal  `json:"proposal"`
	Transient map[string][]byte `json:"transient,omitempty"`
}

// subscribeRequest opens a peer.subscribe deliver stream.
type subscribeRequest struct {
	From uint64 `json:"from"`
	// Live selects SubscribeLive (From ignored) over SubscribeFrom.
	Live bool `json:"live,omitempty"`
}

// pvtRequest asks a peer for one transaction's private rwset of a
// collection (the reconciler's pull).
type pvtRequest struct {
	TxID       string `json:"tx_id"`
	Collection string `json:"collection"`
}

// infoResponse describes a serving peer; the wire client caches it at
// connect time to answer Name/Org/ChannelName locally, and cluster
// tests use Height/StateHash for convergence checks.
type infoResponse struct {
	Name      string `json:"name"`
	Org       string `json:"org"`
	Channel   string `json:"channel"`
	Height    uint64 `json:"height"`
	StateHash string `json:"state_hash"`
}

// orderRequest submits a serialized transaction (ledger.Transaction
// canonical bytes) for ordering.
type orderRequest struct {
	Tx []byte `json:"tx"`
}

// txIDRequest names a transaction for order.inpending / order.flushtx.
type txIDRequest struct {
	TxID string `json:"tx_id"`
}

// inPendingResponse reports order.inpending's verdict.
type inPendingResponse struct {
	Pending bool `json:"pending"`
}

// blocksRequest opens an order.blocks stream from block number From.
type blocksRequest struct {
	From uint64 `json:"from"`
}

// evaluateResponse carries gw.evaluate's query payload.
type evaluateResponse struct {
	Payload []byte `json:"payload,omitempty"`
}

// submitAsyncResponse hands back a server-side commit handle.
type submitAsyncResponse struct {
	Handle uint64 `json:"handle"`
	TxID   string `json:"tx_id"`
}

// handleRequest names a commit handle for gw.status / gw.close.
type handleRequest struct {
	Handle uint64 `json:"handle"`
}

// Compile-time guarantee that the request/response structs the protocol
// shares with the service layer stay marshalable.
var (
	_ = service.InvokeRequest{}
	_ = service.SubmitResult{}
)
