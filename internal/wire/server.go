package wire

import (
	"context"
	"crypto/tls"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/identity"
)

// Handler serves one RPC method. Unary handlers return (result, error)
// and ignore the sink. Stream handlers call sink.Ack once registration
// succeeded, then sink.Send for each event, and return when the stream
// ends (their error, if any, travels in the terminal response). The
// context carries the caller's deadline and is canceled when the client
// sends ftCancel or the connection drops.
type Handler func(ctx context.Context, body json.RawMessage, sink *Sink) (any, error)

// ServerOptions configure a wire server.
type ServerOptions struct {
	// Identity, when set, enables TLS with a self-signed certificate
	// over the identity's key; clients pin its public key.
	Identity *identity.Identity
	// MaxFrame bounds frame payloads; 0 selects DefaultMaxFrame.
	MaxFrame int
}

// Server listens on one TCP address and serves registered RPC methods.
// One server typically fronts one component (a peer, the orderer, a
// gateway); cmd/pdcnet runs one per process.
type Server struct {
	handlers map[string]Handler
	maxFrame int
	tlsConf  *tls.Config

	mu  sync.Mutex
	ln  net.Listener
	wg  sync.WaitGroup
	err error
	// quit closes when Close is called; per-connection loops watch it.
	quit   chan struct{}
	closed bool
}

// NewServer creates an empty server; register methods with Handle, then
// call Listen.
func NewServer(opts ServerOptions) (*Server, error) {
	s := &Server{
		handlers: make(map[string]Handler),
		maxFrame: opts.MaxFrame,
		quit:     make(chan struct{}),
	}
	if s.maxFrame <= 0 {
		s.maxFrame = DefaultMaxFrame
	}
	if opts.Identity != nil {
		cert, err := opts.Identity.TLSCertificate()
		if err != nil {
			return nil, fmt.Errorf("wire: server tls: %w", err)
		}
		s.tlsConf = &tls.Config{
			Certificates: []tls.Certificate{cert},
			MinVersion:   tls.VersionTLS13,
		}
	}
	return s, nil
}

// Handle registers a method handler. Not safe to call after Listen.
func (s *Server) Handle(method string, h Handler) { s.handlers[method] = h }

// Listen binds addr (e.g. "127.0.0.1:7051") and starts accepting.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	if s.tlsConf != nil {
		ln = tls.NewListener(ln, s.tlsConf)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, tears down every connection and waits for
// handlers to finish.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	close(s.quit)
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		nc, err := ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
			default:
				s.mu.Lock()
				s.err = err
				s.mu.Unlock()
			}
			return
		}
		s.wg.Add(1)
		go s.serveConn(nc)
	}
}

// serveConn runs one connection: a read loop dispatching requests to
// handler goroutines, a cancel registry keyed by stream ID, and the
// shared write queue.
func (s *Server) serveConn(nc net.Conn) {
	defer s.wg.Done()
	cn := newConn(nc, s.maxFrame)
	defer cn.close(nil)

	// cancels maps live stream IDs to their handler contexts' cancel
	// functions, so ftCancel (and connection teardown) aborts them.
	var mu sync.Mutex
	cancels := make(map[uint64]context.CancelFunc)
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, cancel := range cancels {
			cancel()
		}
	}()

	// Watch for server shutdown.
	connDone := make(chan struct{})
	defer close(connDone)
	go func() {
		select {
		case <-s.quit:
			cn.close(ErrConnClosed)
		case <-connDone:
		}
	}()

	var hwg sync.WaitGroup
	defer hwg.Wait()
	for {
		f, err := cn.read()
		if err != nil {
			cn.close(err)
			return
		}
		switch f.Type {
		case ftCancel:
			mu.Lock()
			if cancel, ok := cancels[f.Stream]; ok {
				cancel()
			}
			mu.Unlock()
		case ftRequest:
			var req request
			if err := json.Unmarshal(f.Payload, &req); err != nil {
				cn.close(fmt.Errorf("%w: request body: %v", ErrCorrupt, err))
				return
			}
			h, ok := s.handlers[req.Method]
			if !ok {
				s.reply(cn, f.Stream, nil, fmt.Errorf("wire: unknown method %q", req.Method))
				continue
			}
			var ctx context.Context
			var cancel context.CancelFunc
			if req.Deadline != 0 {
				ctx, cancel = context.WithDeadline(context.Background(), time.Unix(0, req.Deadline))
			} else {
				ctx, cancel = context.WithCancel(context.Background())
			}
			mu.Lock()
			if _, live := cancels[f.Stream]; live {
				// Reusing a live stream ID would orphan the first
				// handler's cancel; the client is broken, drop it.
				mu.Unlock()
				cancel()
				cn.close(fmt.Errorf("%w: stream %d reused while live", ErrCorrupt, f.Stream))
				return
			}
			cancels[f.Stream] = cancel
			mu.Unlock()
			hwg.Add(1)
			go func(stream uint64, body json.RawMessage) {
				defer hwg.Done()
				defer func() {
					mu.Lock()
					delete(cancels, stream)
					mu.Unlock()
					cancel()
				}()
				sink := &Sink{cn: cn, stream: stream}
				result, err := h(ctx, body, sink)
				if sink.acked {
					// Stream: terminal response ends it.
					sink.end(err)
					return
				}
				s.reply(cn, stream, result, err)
			}(f.Stream, req.Body)
		default:
			// Clients never send responses or events.
			cn.close(fmt.Errorf("%w: unexpected frame type %d from client", ErrCorrupt, f.Type))
			return
		}
	}
}

// reply sends a unary response.
func (s *Server) reply(cn *conn, stream uint64, result any, err error) {
	resp := response{}
	if err != nil {
		resp.Err = encodeError(err)
	} else if result != nil {
		b, merr := json.Marshal(result)
		if merr != nil {
			resp.Err = encodeError(fmt.Errorf("wire: marshal response: %w", merr))
		} else {
			resp.Body = b
		}
	}
	sendResponse(cn, stream, &resp)
}

// sendResponse delivers a response, salvaging send failures: a dropped
// response would leave the client's Call blocked forever, so on failure
// (typically ErrFrameTooLarge for an oversized body) it retries with a
// small internal-error response, and failing that closes the connection
// so the client's read loop fails every pending call.
func sendResponse(cn *conn, stream uint64, resp *response) {
	payload, err := json.Marshal(resp)
	if err == nil {
		if err = cn.send(frame{Type: ftResponse, Stream: stream, Payload: payload}); err == nil {
			return
		}
	}
	cause := err
	fallback, merr := json.Marshal(&response{Err: &WireError{
		Code:    codeInternal,
		Message: fmt.Sprintf("wire: send response: %v", cause),
	}})
	if merr == nil {
		if cn.send(frame{Type: ftResponse, Stream: stream, Payload: fallback}) == nil {
			return
		}
	}
	cn.close(fmt.Errorf("wire: send response: %w", cause))
}

// Sink is a stream handler's outbound side: Ack acknowledges the
// subscription (the client's Stream call returns), Send emits events.
type Sink struct {
	cn     *conn
	stream uint64
	acked  bool
}

// Ack confirms the subscription is registered. Events sent after Ack
// are guaranteed to include everything from the subscription's start
// point — the client blocks on this before ordering transactions whose
// commits it must observe.
func (k *Sink) Ack() error {
	k.acked = true
	payload, err := json.Marshal(&response{More: true})
	if err != nil {
		return err
	}
	return k.cn.send(frame{Type: ftResponse, Stream: k.stream, Payload: payload})
}

// Send emits one stream event.
func (k *Sink) Send(ev event) error {
	payload, err := json.Marshal(&ev)
	if err != nil {
		return fmt.Errorf("wire: marshal event: %w", err)
	}
	return k.cn.send(frame{Type: ftEvent, Stream: k.stream, Payload: payload})
}

// end sends the terminal response of an acked stream.
func (k *Sink) end(err error) {
	resp := response{}
	if err != nil && !errors.Is(err, context.Canceled) {
		resp.Err = encodeError(err)
	}
	sendResponse(k.cn, k.stream, &resp)
}
