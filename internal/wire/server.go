package wire

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/identity"
)

// Body is a request body awaiting decoding: the raw payload bytes plus
// the codec the client encoded them with. Handlers call Decode exactly
// like they used to call json.Unmarshal — the codec seam keeps them
// agnostic of which encoding the client chose. The underlying bytes are
// only valid until the handler returns (they live in a pooled frame
// buffer); Decode copies everything it extracts, so decoded structs are
// safe to retain.
type Body struct {
	codec codecID
	data  []byte
}

// Decode unmarshals the body into v using the frame's codec.
func (b Body) Decode(v any) error { return unmarshalBody(b.codec, b.data, v) }

// Len returns the body's encoded size in bytes.
func (b Body) Len() int { return len(b.data) }

// Handler serves one RPC method. Unary handlers return (result, error)
// and ignore the sink. Stream handlers call sink.Ack once registration
// succeeded, then sink.Send / sink.SendBatch for events, and return
// when the stream ends (their error, if any, travels in the terminal
// response). The context carries the caller's deadline and is canceled
// when the client sends ftCancel or the connection drops.
type Handler func(ctx context.Context, body Body, sink *Sink) (any, error)

// ServerOptions configure a wire server.
type ServerOptions struct {
	// Identity, when set, enables TLS with a self-signed certificate
	// over the identity's key; clients pin its public key.
	Identity *identity.Identity
	// MaxFrame bounds frame payloads; 0 selects DefaultMaxFrame.
	MaxFrame int
}

// Server listens on one TCP address and serves registered RPC methods.
// One server typically fronts one component (a peer, the orderer, a
// gateway); cmd/pdcnet runs one per process. The server has no codec
// configuration: it answers every frame in the codec the frame arrived
// with, so one server serves binary and JSON clients at once.
type Server struct {
	handlers map[string]Handler
	maxFrame int
	tlsConf  *tls.Config

	mu  sync.Mutex
	ln  net.Listener
	wg  sync.WaitGroup
	err error
	// quit closes when Close is called; per-connection loops watch it.
	quit   chan struct{}
	closed bool
}

// NewServer creates an empty server; register methods with Handle, then
// call Listen.
func NewServer(opts ServerOptions) (*Server, error) {
	s := &Server{
		handlers: make(map[string]Handler),
		maxFrame: opts.MaxFrame,
		quit:     make(chan struct{}),
	}
	if s.maxFrame <= 0 {
		s.maxFrame = DefaultMaxFrame
	}
	if opts.Identity != nil {
		cert, err := opts.Identity.TLSCertificate()
		if err != nil {
			return nil, fmt.Errorf("wire: server tls: %w", err)
		}
		s.tlsConf = &tls.Config{
			Certificates: []tls.Certificate{cert},
			MinVersion:   tls.VersionTLS13,
		}
	}
	return s, nil
}

// Handle registers a method handler. Not safe to call after Listen.
func (s *Server) Handle(method string, h Handler) { s.handlers[method] = h }

// Listen binds addr (e.g. "127.0.0.1:7051") and starts accepting.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	if s.tlsConf != nil {
		ln = tls.NewListener(ln, s.tlsConf)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, tears down every connection and waits for
// handlers to finish.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	close(s.quit)
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		nc, err := ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
			default:
				s.mu.Lock()
				s.err = err
				s.mu.Unlock()
			}
			return
		}
		s.wg.Add(1)
		go s.serveConn(nc)
	}
}

// serveConn runs one connection: a read loop dispatching requests to
// handler goroutines, a cancel registry keyed by stream ID, and the
// shared write queue.
func (s *Server) serveConn(nc net.Conn) {
	defer s.wg.Done()
	cn := newConn(nc, s.maxFrame)
	defer cn.close(nil)

	// cancels maps live stream IDs to their handler contexts' cancel
	// functions, so ftCancel (and connection teardown) aborts them.
	var mu sync.Mutex
	cancels := make(map[uint64]context.CancelFunc)
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, cancel := range cancels {
			cancel()
		}
	}()

	// Watch for server shutdown.
	connDone := make(chan struct{})
	defer close(connDone)
	go func() {
		select {
		case <-s.quit:
			cn.close(ErrConnClosed)
		case <-connDone:
		}
	}()

	var hwg sync.WaitGroup
	defer hwg.Wait()
	for {
		f, err := cn.read()
		if err != nil {
			cn.close(err)
			return
		}
		switch f.Type {
		case ftCancel:
			mu.Lock()
			if cancel, ok := cancels[f.Stream]; ok {
				cancel()
			}
			mu.Unlock()
			putBuf(f.Payload)
		case ftRequest:
			var req request
			if err := unmarshalEnvelope(f.Codec, f.Payload, &req); err != nil {
				putBuf(f.Payload)
				cn.close(fmt.Errorf("%w: request body: %v", ErrCorrupt, err))
				return
			}
			h, ok := s.handlers[req.Method]
			if !ok {
				s.reply(cn, f.Stream, f.Codec, nil, fmt.Errorf("wire: unknown method %q", req.Method))
				putBuf(f.Payload)
				continue
			}
			var ctx context.Context
			var cancel context.CancelFunc
			if req.Deadline != 0 {
				ctx, cancel = context.WithDeadline(context.Background(), time.Unix(0, req.Deadline))
			} else {
				ctx, cancel = context.WithCancel(context.Background())
			}
			mu.Lock()
			if _, live := cancels[f.Stream]; live {
				// Reusing a live stream ID would orphan the first
				// handler's cancel; the client is broken, drop it.
				mu.Unlock()
				cancel()
				putBuf(f.Payload)
				cn.close(fmt.Errorf("%w: stream %d reused while live", ErrCorrupt, f.Stream))
				return
			}
			cancels[f.Stream] = cancel
			mu.Unlock()
			hwg.Add(1)
			// The request's payload buffer (which req.Body may alias)
			// stays alive until the handler goroutine finishes, then
			// recycles.
			go func(stream uint64, codec codecID, body []byte, payload []byte) {
				defer hwg.Done()
				defer putBuf(payload)
				defer func() {
					mu.Lock()
					delete(cancels, stream)
					mu.Unlock()
					cancel()
				}()
				sink := &Sink{cn: cn, stream: stream, codec: codec}
				result, err := h(ctx, Body{codec: codec, data: body}, sink)
				if sink.acked {
					// Stream: terminal response ends it.
					sink.end(err)
					return
				}
				s.reply(cn, stream, codec, result, err)
			}(f.Stream, f.Codec, req.Body, f.Payload)
		default:
			// Clients never send responses or events.
			putBuf(f.Payload)
			cn.close(fmt.Errorf("%w: unexpected frame type %d from client", ErrCorrupt, f.Type))
			return
		}
	}
}

// reply sends a unary response, encoded with the codec of the request
// it answers (the result body may independently fall back to JSON when
// the binary codec doesn't know its type — then the whole frame goes
// out as JSON, which the client handles per frame).
func (s *Server) reply(cn *conn, stream uint64, c codecID, result any, err error) {
	resp := response{}
	respCodec := c
	if err != nil {
		resp.Err = encodeError(err)
	} else if result != nil {
		b, bc, merr := marshalBody(c, result)
		if merr != nil {
			resp.Err = encodeError(fmt.Errorf("wire: marshal response: %w", merr))
		} else {
			resp.Body = b
			respCodec = bc
		}
	}
	sendResponse(cn, stream, respCodec, &resp)
	putBuf(resp.Body)
}

// sendResponse delivers a response, salvaging send failures: a dropped
// response would leave the client's Call blocked forever, so on failure
// (typically ErrFrameTooLarge for an oversized body) it retries with a
// small internal-error response, and failing that closes the connection
// so the client's read loop fails every pending call.
func sendResponse(cn *conn, stream uint64, c codecID, resp *response) {
	payload, err := marshalEnvelope(c, resp)
	if err == nil {
		err = cn.send(frame{Type: ftResponse, Codec: c, Stream: stream, Payload: payload})
		putBuf(payload)
		if err == nil {
			return
		}
	}
	cause := err
	fallback, merr := marshalEnvelope(c, &response{Err: &WireError{
		Code:    codeInternal,
		Message: fmt.Sprintf("wire: send response: %v", cause),
	}})
	if merr == nil {
		err := cn.send(frame{Type: ftResponse, Codec: c, Stream: stream, Payload: fallback})
		putBuf(fallback)
		if err == nil {
			return
		}
	}
	cn.close(fmt.Errorf("wire: send response: %w", cause))
}

// Sink is a stream handler's outbound side: Ack acknowledges the
// subscription (the client's Stream call returns), Send and SendBatch
// emit events. Every frame a sink emits uses the codec of the request
// that opened the stream.
type Sink struct {
	cn     *conn
	stream uint64
	codec  codecID
	acked  bool
}

// Ack confirms the subscription is registered. Events sent after Ack
// are guaranteed to include everything from the subscription's start
// point — the client blocks on this before ordering transactions whose
// commits it must observe.
func (k *Sink) Ack() error {
	k.acked = true
	payload, err := marshalEnvelope(k.codec, &response{More: true})
	if err != nil {
		return err
	}
	err = k.cn.send(frame{Type: ftResponse, Codec: k.codec, Stream: k.stream, Payload: payload})
	putBuf(payload)
	return err
}

// Send emits one stream event.
func (k *Sink) Send(ev event) error {
	payload, err := eventPayload(k.codec, &ev)
	if err != nil {
		return err
	}
	// Event payloads are memoized on the event (shared across
	// subscribers), never pooled — do not release.
	return k.cn.send(frame{Type: ftEvent, Codec: k.codec, Stream: k.stream, Payload: payload})
}

// eventBatchMax bounds how many events coalesce into one ftEvents
// frame. 32 keeps a worst-case batch of full blocks well under
// DefaultMaxFrame for default batch sizes while amortizing per-frame
// overhead during catch-up replay.
const eventBatchMax = 32

// SendBatch emits a batch of events as one multi-event frame, in order.
// A batch that would exceed the frame bound degrades to per-event
// frames (whose own size errors then surface normally).
func (k *Sink) SendBatch(evs []event) error {
	if len(evs) == 0 {
		return nil
	}
	if len(evs) == 1 {
		return k.Send(evs[0])
	}
	payloads := make([][]byte, len(evs))
	total := 0
	for i := range evs {
		p, err := eventPayload(k.codec, &evs[i])
		if err != nil {
			return err
		}
		payloads[i] = p
		total += len(p) + 8 // per-event length prefix / JSON separator headroom
	}
	if headerSize+total+trailerSize > k.cn.maxFrame {
		for i := range evs {
			if err := k.Send(evs[i]); err != nil {
				return err
			}
		}
		return nil
	}
	buf := getBuf(total + 2)
	if k.codec == codecBinary {
		buf = appendUvarint(buf, uint64(len(payloads)))
		for _, p := range payloads {
			buf = appendUvarint(buf, uint64(len(p)))
			buf = append(buf, p...)
		}
	} else {
		// The JSON batch form is a JSON array of event objects — each
		// memoized payload is one object, so the batch is concatenation.
		buf = append(buf, '[')
		for i, p := range payloads {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, p...)
		}
		buf = append(buf, ']')
	}
	err := k.cn.send(frame{Type: ftEvents, Codec: k.codec, Stream: k.stream, Payload: buf})
	putBuf(buf)
	if err == nil {
		stats.batchFrames.Add(1)
		stats.batchedEvents.Add(uint64(len(evs)))
	}
	return err
}

// end sends the terminal response of an acked stream.
func (k *Sink) end(err error) {
	resp := response{}
	if err != nil && !errors.Is(err, context.Canceled) {
		resp.Err = encodeError(err)
	}
	sendResponse(k.cn, k.stream, k.codec, &resp)
}

// eventPayload returns the encoded event-envelope payload for ev,
// memoized on the underlying deliver event: a block fanning out to N
// remote subscribers is encoded once per codec, not N times.
func eventPayload(c codecID, ev *event) ([]byte, error) {
	slot := 0
	if c == codecBinary {
		slot = 1
	}
	encode := func() []byte {
		data, err := marshalEnvelope(c, ev)
		if err != nil {
			return nil
		}
		// The memo retains the bytes indefinitely; make sure they are
		// not a pooled buffer (marshalEnvelope's binary path pools).
		out := make([]byte, len(data))
		copy(out, data)
		putBuf(data)
		return out
	}
	var payload []byte
	switch {
	case ev.Block != nil:
		payload = ev.Block.Encoded(slot, encode)
	case ev.Status != nil:
		payload = ev.Status.Encoded(slot, encode)
	default:
		payload = encode()
	}
	if payload == nil {
		return nil, fmt.Errorf("wire: marshal event")
	}
	return payload, nil
}
