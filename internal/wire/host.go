package wire

import (
	"context"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/deliver"
	"repro/internal/gateway"
	"repro/internal/ledger"
	"repro/internal/orderer"
	"repro/internal/peer"
	"repro/internal/rwset"
	"repro/internal/service"
	"repro/internal/snapshot"
)

// This file is the served side of the RPC catalogue: Register* install
// handlers translating wire requests onto the in-process components.
// The method names and body structs (msg.go) are the protocol;
// docs/WIRE.md documents them.

// RegisterPeer serves a peer's endorse/deliver/private-data surface:
//
//	peer.endorse          unary   endorseRequest -> ledger.ProposalResponse
//	peer.subscribe        stream  subscribeRequest -> deliver events
//	peer.pvt              unary   pvtRequest -> rwset.CollPvtRWSet (null when absent)
//	peer.pvtpush          unary   rwset.TxPvtRWSet -> {}
//	peer.info             unary   {} -> infoResponse
//	peer.snapshot.meta    unary   {} -> snapshotMetaResponse
//	peer.snapshot.chunks  stream  snapshotChunksRequest -> chunk events
func RegisterPeer(s *Server, p *peer.Peer) {
	exports := &snapshotExports{}
	s.Handle("peer.endorse", func(ctx context.Context, body Body, _ *Sink) (any, error) {
		var req endorseRequest
		if err := body.Decode(&req); err != nil {
			return nil, fmt.Errorf("wire: peer.endorse: %w", err)
		}
		if req.Proposal == nil {
			return nil, fmt.Errorf("wire: peer.endorse: no proposal")
		}
		// The transient map travels beside the proposal (it is excluded
		// from proposal serialization) and is reattached for simulation.
		req.Proposal.Transient = req.Transient
		return p.Endorse(ctx, req.Proposal)
	})
	s.Handle("peer.subscribe", func(ctx context.Context, body Body, sink *Sink) (any, error) {
		var req subscribeRequest
		if err := body.Decode(&req); err != nil {
			return nil, fmt.Errorf("wire: peer.subscribe: %w", err)
		}
		var stream service.Stream
		if req.Live {
			stream = p.SubscribeLive()
		} else {
			var err error
			stream, err = p.SubscribeFrom(req.From)
			if err != nil {
				return nil, err
			}
		}
		defer stream.Close()
		if err := sink.Ack(); err != nil {
			return nil, err
		}
		return nil, pumpEvents(ctx, stream, sink)
	})
	s.Handle("peer.pvt", func(_ context.Context, body Body, _ *Sink) (any, error) {
		var req pvtRequest
		if err := body.Decode(&req); err != nil {
			return nil, fmt.Errorf("wire: peer.pvt: %w", err)
		}
		return p.ServePrivateData(req.TxID, req.Collection), nil
	})
	s.Handle("peer.pvtpush", func(_ context.Context, body Body, _ *Sink) (any, error) {
		var set rwset.TxPvtRWSet
		if err := body.Decode(&set); err != nil {
			return nil, fmt.Errorf("wire: peer.pvtpush: %w", err)
		}
		if set.TxID == "" {
			return nil, fmt.Errorf("wire: peer.pvtpush: no tx_id")
		}
		p.ReceivePrivateData(&set)
		return nil, nil
	})
	s.Handle("peer.info", func(_ context.Context, _ Body, _ *Sink) (any, error) {
		return &infoResponse{
			Name:      p.Name(),
			Org:       p.Org(),
			Channel:   p.ChannelName(),
			Height:    p.Ledger().Height(),
			StateHash: hex.EncodeToString(p.WorldState().StateHash()),
			Base:      p.Ledger().Base(),
		}, nil
	})
	s.Handle("peer.snapshot.meta", func(_ context.Context, _ Body, _ *Sink) (any, error) {
		id, dir, err := exports.fresh(p)
		if err != nil {
			return nil, err
		}
		raw, err := os.ReadFile(peer.SnapshotManifestPath(dir))
		if err != nil {
			return nil, fmt.Errorf("wire: peer.snapshot.meta: %w", err)
		}
		return &snapshotMetaResponse{Export: id, Manifest: raw}, nil
	})
	s.Handle("peer.snapshot.chunks", func(ctx context.Context, body Body, sink *Sink) (any, error) {
		var req snapshotChunksRequest
		if err := body.Decode(&req); err != nil {
			return nil, fmt.Errorf("wire: peer.snapshot.chunks: %w", err)
		}
		dir, ok := exports.lookup(req.Export)
		if !ok {
			return nil, fmt.Errorf("wire: peer.snapshot.chunks: export %d expired (re-fetch peer.snapshot.meta)", req.Export)
		}
		m, err := snapshot.ReadManifest(dir)
		if err != nil {
			return nil, err
		}
		if err := sink.Ack(); err != nil {
			return nil, err
		}
		// One chunk file per frame, verbatim: the manifest's chunk hashes
		// verify at the installer, so the transport adds no trust.
		for i, ci := range m.Chunks {
			data, err := os.ReadFile(filepath.Join(dir, ci.Name))
			if err != nil {
				return nil, fmt.Errorf("wire: peer.snapshot.chunks: %w", err)
			}
			ev := event{Chunk: &SnapshotChunkEvent{Index: uint64(i), Name: ci.Name, Data: data}}
			if err := sink.SendBatch([]event{ev}); err != nil {
				return nil, err
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
		}
		return nil, nil
	})
}

// snapshotExports tracks the served peer's most recent snapshot export.
// A meta call replaces the previous export (and deletes its directory);
// chunk streams are keyed by the export ID so a replaced export fails
// typed instead of serving mixed artifacts.
type snapshotExports struct {
	mu   sync.Mutex
	next uint64
	id   uint64
	dir  string // artifact directory, inside a private temp parent
}

// fresh exports a new snapshot into a temp directory and makes it the
// current export, dropping the previous one.
func (se *snapshotExports) fresh(p *peer.Peer) (uint64, string, error) {
	parent, err := os.MkdirTemp("", "pdc-snapshot-export-")
	if err != nil {
		return 0, "", fmt.Errorf("wire: peer.snapshot.meta: %w", err)
	}
	dir := filepath.Join(parent, "snap")
	if _, err := p.ExportSnapshot(dir); err != nil {
		os.RemoveAll(parent)
		return 0, "", err
	}
	se.mu.Lock()
	if se.dir != "" {
		os.RemoveAll(filepath.Dir(se.dir))
	}
	se.next++
	se.id, se.dir = se.next, dir
	id := se.id
	se.mu.Unlock()
	return id, dir, nil
}

// lookup resolves an export ID to its artifact directory.
func (se *snapshotExports) lookup(id uint64) (string, bool) {
	se.mu.Lock()
	defer se.mu.Unlock()
	if id == 0 || id != se.id {
		return "", false
	}
	return se.dir, true
}

// RegisterOrderer serves the ordering surface:
//
//	order.submit     unary   orderRequest -> {}
//	order.inpending  unary   txIDRequest -> inPendingResponse
//	order.flushtx    unary   txIDRequest -> {}
//	order.blocks     stream  blocksRequest -> block events
func RegisterOrderer(s *Server, o *orderer.Service) {
	s.Handle("order.submit", func(ctx context.Context, body Body, _ *Sink) (any, error) {
		var req orderRequest
		if err := body.Decode(&req); err != nil {
			return nil, fmt.Errorf("wire: order.submit: %w", err)
		}
		tx, err := ledger.ParseTransaction(req.Tx)
		if err != nil {
			return nil, fmt.Errorf("wire: order.submit: %w", err)
		}
		return nil, o.Order(ctx, tx)
	})
	s.Handle("order.inpending", func(_ context.Context, body Body, _ *Sink) (any, error) {
		var req txIDRequest
		if err := body.Decode(&req); err != nil {
			return nil, fmt.Errorf("wire: order.inpending: %w", err)
		}
		return &inPendingResponse{Pending: o.InPending(req.TxID)}, nil
	})
	s.Handle("order.flushtx", func(_ context.Context, body Body, _ *Sink) (any, error) {
		var req txIDRequest
		if err := body.Decode(&req); err != nil {
			return nil, fmt.Errorf("wire: order.flushtx: %w", err)
		}
		o.FlushTx(req.TxID)
		return nil, nil
	})
	s.Handle("order.blocks", func(ctx context.Context, body Body, sink *Sink) (any, error) {
		var req blocksRequest
		if err := body.Decode(&req); err != nil {
			return nil, fmt.Errorf("wire: order.blocks: %w", err)
		}
		// Backlog first, then live deliveries; the orderer's Subscribe
		// runs the handler under its delivery fan-out, so forward into
		// a channel to keep the sink writes on this goroutine. The
		// subscription is released when the stream ends, or the orderer
		// would clone and queue every future block for a consumer that
		// hung up (clients redial and re-subscribe on every drop).
		// SubscribeFrom fails with ErrCompacted when From predates the
		// retained window — the typed signal (mapped by codeCompacted)
		// that the caller needs a peer snapshot, not a replay.
		blocks := make(chan *ledger.Block, 64)
		backlog, sub, err := o.SubscribeFrom(req.From, func(b *ledger.Block) {
			select {
			case blocks <- b:
			case <-ctx.Done():
			}
		})
		if err != nil {
			return nil, err
		}
		defer sub.Close()
		if err := sink.Ack(); err != nil {
			return nil, err
		}
		next := req.From
		// Catch-up replay batches eventBatchMax blocks per frame
		// instead of one frame per block.
		batch := make([]event, 0, eventBatchMax)
		for _, b := range backlog {
			if b.Header.Number < next {
				continue
			}
			batch = append(batch, event{Block: blockEvent(b)})
			next = b.Header.Number + 1
			if len(batch) == eventBatchMax {
				if err := sink.SendBatch(batch); err != nil {
					return nil, err
				}
				batch = batch[:0]
			}
		}
		if err := sink.SendBatch(batch); err != nil {
			return nil, err
		}
		for {
			select {
			case b := <-blocks:
				if b.Header.Number < next {
					continue // replayed by the backlog already
				}
				batch = append(batch[:0], event{Block: blockEvent(b)})
				next = b.Header.Number + 1
				// Coalesce whatever else is already queued — the same
				// flush-on-idle discipline conn.writeLoop applies to
				// frames: batching never delays a lone block.
			drain:
				for len(batch) < eventBatchMax {
					select {
					case nb := <-blocks:
						if nb.Header.Number < next {
							continue
						}
						batch = append(batch, event{Block: blockEvent(nb)})
						next = nb.Header.Number + 1
					default:
						break drain
					}
				}
				if err := sink.SendBatch(batch); err != nil {
					return nil, err
				}
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	})
}

// RegisterGateway serves the client-facing transaction API. SubmitAsync
// returns a handle the client polls with gw.status / releases with
// gw.close — commit waiting stays server-side, next to the deliver
// stream.
//
//	gw.evaluate     unary  service.InvokeRequest -> evaluateResponse
//	gw.submit       unary  service.InvokeRequest -> service.SubmitResult
//	gw.submitasync  unary  service.InvokeRequest -> submitAsyncResponse
//	gw.status       unary  handleRequest -> service.SubmitResult
//	gw.close        unary  handleRequest -> {}
func RegisterGateway(s *Server, gw *gateway.Gateway) {
	h := &handleTable{commits: make(map[uint64]service.Commit)}
	s.Handle("gw.evaluate", func(ctx context.Context, body Body, _ *Sink) (any, error) {
		var req service.InvokeRequest
		if err := body.Decode(&req); err != nil {
			return nil, fmt.Errorf("wire: gw.evaluate: %w", err)
		}
		payload, err := gw.Evaluate(ctx, &req)
		if err != nil {
			return nil, err
		}
		return &evaluateResponse{Payload: payload}, nil
	})
	s.Handle("gw.submit", func(ctx context.Context, body Body, _ *Sink) (any, error) {
		var req service.InvokeRequest
		if err := body.Decode(&req); err != nil {
			return nil, fmt.Errorf("wire: gw.submit: %w", err)
		}
		return gw.Submit(ctx, &req)
	})
	s.Handle("gw.submitasync", func(ctx context.Context, body Body, _ *Sink) (any, error) {
		var req service.InvokeRequest
		if err := body.Decode(&req); err != nil {
			return nil, fmt.Errorf("wire: gw.submitasync: %w", err)
		}
		commit, err := gw.SubmitAsync(ctx, &req)
		if err != nil {
			return nil, err
		}
		return &submitAsyncResponse{Handle: h.put(commit), TxID: commit.TxID()}, nil
	})
	s.Handle("gw.status", func(ctx context.Context, body Body, _ *Sink) (any, error) {
		var req handleRequest
		if err := body.Decode(&req); err != nil {
			return nil, fmt.Errorf("wire: gw.status: %w", err)
		}
		commit, ok := h.get(req.Handle)
		if !ok {
			return nil, fmt.Errorf("wire: gw.status: unknown handle %d", req.Handle)
		}
		return commit.Status(ctx)
	})
	s.Handle("gw.close", func(_ context.Context, body Body, _ *Sink) (any, error) {
		var req handleRequest
		if err := body.Decode(&req); err != nil {
			return nil, fmt.Errorf("wire: gw.close: %w", err)
		}
		if commit, ok := h.take(req.Handle); ok {
			commit.Close()
		}
		return nil, nil
	})
}

// blockEvent wraps a block for the wire's event payload.
func blockEvent(b *ledger.Block) *deliver.BlockEvent {
	return &deliver.BlockEvent{Number: b.Header.Number, Block: b}
}

// encodeEvent maps a deliver event onto the wire's tagged-union form.
func encodeEvent(ev deliver.Event) event {
	switch e := ev.(type) {
	case *deliver.BlockEvent:
		return event{Block: e}
	case *deliver.TxStatusEvent:
		return event{Status: e}
	}
	return event{}
}

// pumpEvents forwards a service.Stream onto a sink until the stream
// ends or the caller cancels. After each blocking receive it coalesces
// whatever further events the stream already buffered into one
// multi-event frame — flush-on-idle: a backlogged subscriber catches up
// in eventBatchMax-sized frames, a lone event departs immediately.
func pumpEvents(ctx context.Context, stream service.Stream, sink *Sink) error {
	batch := make([]event, 0, eventBatchMax)
	for {
		select {
		case ev, ok := <-stream.Events():
			if !ok {
				return stream.Err()
			}
			batch = append(batch[:0], encodeEvent(ev))
		drain:
			for len(batch) < eventBatchMax {
				select {
				case ev2, ok2 := <-stream.Events():
					if !ok2 {
						// Flush what we have; the stream's end reason
						// travels in the terminal response.
						if err := sink.SendBatch(batch); err != nil {
							return err
						}
						return stream.Err()
					}
					batch = append(batch, encodeEvent(ev2))
				default:
					break drain
				}
			}
			if err := sink.SendBatch(batch); err != nil {
				return err
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// handleTable tracks server-side commit handles for remote SubmitAsync
// callers.
type handleTable struct {
	mu      sync.Mutex
	next    uint64
	commits map[uint64]service.Commit
}

func (h *handleTable) put(c service.Commit) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.next++
	h.commits[h.next] = c
	return h.next
}

func (h *handleTable) get(id uint64) (service.Commit, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	c, ok := h.commits[id]
	return c, ok
}

func (h *handleTable) take(id uint64) (service.Commit, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	c, ok := h.commits[id]
	delete(h.commits, id)
	return c, ok
}
