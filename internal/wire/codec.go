package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Codec selection. The frame header's version byte doubles as the
// payload codec identifier, which is the whole negotiation protocol:
// every frame declares how its payload is encoded, a receiver decodes
// by that byte, and a responder mirrors the codec of the frame it is
// answering. Version 1 is the original JSON encoding and remains fully
// supported — it is the fallback for any body type the binary codec
// does not know, and the debug/fuzz format. Version 2 is the
// hand-rolled length-delimited binary codec for the hot payload types
// (transactions, blocks, rwsets, endorse/submit/status bodies).
type codecID byte

const (
	codecJSON   codecID = verJSON
	codecBinary codecID = verBinary
)

// Codec names a payload encoding in configuration (ClientOptions,
// node options, PDC_WIRE_CODEC).
type Codec string

const (
	// CodecBinary selects the length-delimited binary codec (the
	// default): hot payload types encode positionally, everything else
	// falls back to JSON per frame.
	CodecBinary Codec = "binary"
	// CodecJSON forces every frame to the JSON encoding — the debug
	// format, and the wire format of PR 8 clients.
	CodecJSON Codec = "json"
)

// ParseCodec maps a configuration string onto a Codec; empty selects
// the default (binary).
func ParseCodec(s string) (Codec, error) {
	switch Codec(s) {
	case "", CodecBinary:
		return CodecBinary, nil
	case CodecJSON:
		return CodecJSON, nil
	}
	return "", fmt.Errorf("wire: unknown codec %q (want %q or %q)", s, CodecBinary, CodecJSON)
}

func (c Codec) id() codecID {
	if c == CodecJSON {
		return codecJSON
	}
	return codecBinary
}

// errBinaryCodec is the typed root of binary decode failures; framing
// treats it like a JSON parse error (the connection is poisoned).
var errBinaryCodec = errors.New("wire: binary codec")

// ---------------------------------------------------------------------
// Pooled buffers.
//
// Frame and payload buffers recycle through size-classed sync.Pools.
// Ownership is explicit: whoever holds a buffer from getBuf must either
// hand it off (conn.send's queue hands encoded frames to writeLoop,
// which releases them after the socket write; the read loops hand
// payloads to whoever decodes them) or release it with putBuf. Buffers
// above maxPooledBuf (rare 32 MiB-class frames) are never pooled so a
// burst of huge blocks cannot pin memory.

var bufClasses = [...]int{4 << 10, 64 << 10, 1 << 20}

const maxPooledBuf = 2 << 20

var bufPools [len(bufClasses)]sync.Pool

// getBuf returns a zero-length buffer with capacity at least n.
func getBuf(n int) []byte {
	for i, size := range bufClasses {
		if n > size {
			continue
		}
		if v := bufPools[i].Get(); v != nil {
			stats.poolHits.Add(1)
			return (*v.(*[]byte))[:0]
		}
		stats.poolMisses.Add(1)
		return make([]byte, 0, size)
	}
	stats.poolMisses.Add(1)
	return make([]byte, 0, n)
}

// putBuf recycles a buffer into the class its capacity can serve.
// Accepts any slice (including nil and non-pooled ones); a buffer only
// enters a class if its capacity covers every getBuf of that class, so
// pooled buffers never regrow.
func putBuf(b []byte) {
	c := cap(b)
	if c < bufClasses[0] || c > maxPooledBuf {
		return
	}
	i := 0
	for i+1 < len(bufClasses) && c >= bufClasses[i+1] {
		i++
	}
	b = b[:0]
	bufPools[i].Put(&b)
}

// ---------------------------------------------------------------------
// Payload marshaling.

// marshalBody encodes an RPC body with the preferred codec. A type the
// binary codec has no encoding for falls back to JSON — the returned
// codec says which encoding won, and the caller must tag the whole
// frame with it (envelope and body always share one codec). The buffer
// may be pooled; release it with putBuf when done.
func marshalBody(prefer codecID, v any) ([]byte, codecID, error) {
	if v == nil {
		return nil, prefer, nil
	}
	start := time.Now()
	if prefer == codecBinary {
		if data, ok := binMarshal(v); ok {
			observeEncode(start)
			return data, codecBinary, nil
		}
		stats.jsonFallbacks.Add(1)
	}
	data, err := json.Marshal(v)
	observeEncode(start)
	if err != nil {
		return nil, codecJSON, err
	}
	return data, codecJSON, nil
}

// marshalEnvelope encodes a frame envelope (request/response/event)
// with the given codec. Envelopes are always binary-encodable, so no
// fallback happens here — the codec was already fixed by marshalBody.
func marshalEnvelope(c codecID, v any) ([]byte, error) {
	start := time.Now()
	defer func() { observeEncode(start) }()
	if c == codecBinary {
		if data, ok := binMarshal(v); ok {
			return data, nil
		}
	}
	return json.Marshal(v)
}

// unmarshalBody decodes an RPC body by the frame's codec.
func unmarshalBody(c codecID, data []byte, v any) error {
	start := time.Now()
	defer func() { observeDecode(start) }()
	if c == codecBinary {
		ok, err := binUnmarshal(data, v)
		if ok {
			return err
		}
		return fmt.Errorf("%w: no binary decoding for %T", errBinaryCodec, v)
	}
	return json.Unmarshal(data, v)
}

// unmarshalEnvelope decodes a frame envelope by the frame's codec.
func unmarshalEnvelope(c codecID, data []byte, v any) error {
	return unmarshalBody(c, data, v)
}

// ---------------------------------------------------------------------
// Binary primitives.
//
// The binary encoding is positional: each type writes its fields in a
// fixed order with no field names or tags. Integers are varints
// (unsigned LEB128; signed values zigzag). Strings are length-prefixed.
// Byte slices and collections use a nil-aware length: 0 encodes nil,
// n+1 encodes n elements — mirroring JSON's null-vs-[] distinction so
// both codecs round-trip the same struct to the same struct. Pointers
// carry a one-byte presence marker.

func appendUvarint(b []byte, x uint64) []byte { return binary.AppendUvarint(b, x) }

func appendVarint(b []byte, x int64) []byte { return binary.AppendVarint(b, x) }

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendByteSlice writes a nil-aware byte slice.
func appendByteSlice(b, s []byte) []byte {
	if s == nil {
		return append(b, 0)
	}
	b = appendUvarint(b, uint64(len(s))+1)
	return append(b, s...)
}

// appendCount writes a nil-aware element count (0 = nil collection).
func appendCount(b []byte, n int, isNil bool) []byte {
	if isNil {
		return append(b, 0)
	}
	return appendUvarint(b, uint64(n)+1)
}

func appendStrings(b []byte, ss []string) []byte {
	b = appendCount(b, len(ss), ss == nil)
	for _, s := range ss {
		b = appendString(b, s)
	}
	return b
}

// appendByteMap writes a map[string][]byte with keys in sorted order,
// matching JSON's deterministic map-key ordering.
func appendByteMap(b []byte, m map[string][]byte) []byte {
	b = appendCount(b, len(m), m == nil)
	if len(m) == 0 {
		return b
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b = appendString(b, k)
		b = appendByteSlice(b, m[k])
	}
	return b
}

// binReader decodes the positional binary format with a sticky error:
// after the first failure every read returns a zero value, so decoders
// read straight through and check err once. All lengths are
// bounds-checked against the remaining input before any allocation, so
// corrupt (or fuzzed) input cannot force an oversized allocation.
type binReader struct {
	b   []byte
	off int
	err error
}

func (r *binReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated or invalid %s at offset %d", errBinaryCodec, what, r.off)
	}
}

// setErr records a nested decode failure (e.g. a transaction that fails
// to parse) as the sticky error.
func (r *binReader) setErr(err error) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %v", errBinaryCodec, err)
	}
}

func (r *binReader) remaining() int { return len(r.b) - r.off }

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) bool() bool {
	if r.err != nil {
		return false
	}
	if r.remaining() < 1 {
		r.fail("bool")
		return false
	}
	v := r.b[r.off]
	r.off++
	if v > 1 {
		r.fail("bool")
		return false
	}
	return v == 1
}

// take returns the next n raw bytes (aliasing the input).
func (r *binReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.remaining() {
		r.fail("length")
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *binReader) str() string {
	n := r.uvarint()
	if r.err != nil || n > uint64(r.remaining()) {
		r.fail("string")
		return ""
	}
	return string(r.take(int(n)))
}

// byteSlice reads a nil-aware byte slice, copying out of the input so
// the frame buffer can be released after decoding.
func (r *binReader) byteSlice() []byte {
	n := r.uvarint()
	if n == 0 || r.err != nil {
		return nil
	}
	n--
	if n > uint64(r.remaining()) {
		r.fail("bytes")
		return nil
	}
	return append([]byte(nil), r.take(int(n))...)
}

// byteSliceAlias reads a nil-aware byte slice without copying; only the
// envelope Body fields use it (their lifetime is managed explicitly).
func (r *binReader) byteSliceAlias() []byte {
	n := r.uvarint()
	if n == 0 || r.err != nil {
		return nil
	}
	n--
	if n > uint64(r.remaining()) {
		r.fail("bytes")
		return nil
	}
	return r.take(int(n))
}

// count reads a nil-aware element count. The count is sanity-bounded by
// the remaining input (every element costs at least one byte), so a
// corrupt count cannot pre-allocate an arbitrary slice. Returns -1 for
// a nil collection.
func (r *binReader) count() int {
	n := r.uvarint()
	if r.err != nil {
		return -1
	}
	if n == 0 {
		return -1
	}
	n--
	if n > uint64(r.remaining()) {
		r.fail("count")
		return -1
	}
	return int(n)
}

func (r *binReader) strings() []string {
	n := r.count()
	if n < 0 || r.err != nil {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.str()
	}
	return out
}

func (r *binReader) byteMap() map[string][]byte {
	n := r.count()
	if n < 0 || r.err != nil {
		return nil
	}
	out := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		k := r.str()
		v := r.byteSlice()
		if r.err != nil {
			return nil
		}
		out[k] = v
	}
	return out
}

// done finishes a decode: any sticky error, or trailing garbage, fails
// it — like framing, the binary encoding is canonical.
func (r *binReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing bytes", errBinaryCodec, len(r.b)-r.off)
	}
	return nil
}
