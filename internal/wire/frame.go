// Package wire implements the reproduction's TCP transport: a
// length-prefixed, CRC-protected framing layer carrying the RPCs of the
// internal/service interfaces between OS processes. One connection
// multiplexes any number of concurrent calls and event streams,
// distinguished by a client-chosen stream ID; payloads are either JSON
// (version byte 1) or the hand-rolled binary codec (version byte 2)
// serializations of the same ledger/service structs the in-process
// implementations pass by pointer — see codec.go for the negotiation
// contract.
//
// Frame layout (all integers big-endian):
//
//	offset size  field
//	0      2     magic 0xFA 0xB1
//	2      1     payload codec (1 = JSON, 2 = binary)
//	3      1     frame type (request/response/event/cancel/event-batch)
//	4      8     stream ID
//	12     4     payload length
//	16     n     payload
//	16+n   4     CRC-32C over header+payload
//
// The trailing checksum turns line corruption into a typed ErrCorrupt
// instead of a parse error deep inside a handler; the length field is
// bounded by maxFrame so a corrupted length cannot force an arbitrary
// allocation.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	magic0 = 0xFA
	magic1 = 0xB1

	// verJSON and verBinary are the accepted protocol versions. The
	// version byte names the payload codec — that is the entire codec
	// negotiation: each frame declares its own encoding, responders
	// mirror the codec of the frame they answer, and JSON stays valid
	// forever as the fallback and debug format.
	verJSON   = 1
	verBinary = 2

	headerSize  = 16
	trailerSize = 4

	// DefaultMaxFrame bounds a single frame's payload. Blocks of
	// batched transactions are the largest payloads; 32 MiB leaves an
	// order of magnitude of headroom over the default batch size.
	DefaultMaxFrame = 32 << 20
)

// Frame types.
const (
	ftRequest  = 1 // client → server: open a call or stream
	ftResponse = 2 // server → client: terminal reply, or stream ACK (More)
	ftEvent    = 3 // server → client: one stream event
	ftCancel   = 4 // client → server: cancel the named stream's call
	ftEvents   = 5 // server → client: a batch of stream events, in order
)

var (
	// ErrCorrupt is returned when a frame fails structural validation:
	// bad magic, unknown version or type, or checksum mismatch.
	ErrCorrupt = errors.New("wire: corrupt frame")
	// ErrFrameTooLarge is returned when a frame's declared payload
	// exceeds the connection's maximum.
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
)

// castagnoli is the CRC-32C table (iSCSI polynomial), hardware
// accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frame is one protocol frame. Payload is the raw encoded body; Codec
// says how it is encoded (the wire's version byte). A zero Codec means
// JSON, so hand-built frames in tests keep their PR 8 meaning.
type frame struct {
	Type    byte
	Codec   codecID
	Stream  uint64
	Payload []byte
}

// appendFrame serializes f into buf (reusing its capacity) and returns
// the encoded frame.
func appendFrame(buf []byte, f frame) []byte {
	n := headerSize + len(f.Payload) + trailerSize
	if cap(buf) < n {
		buf = make([]byte, 0, n)
	}
	ver := byte(f.Codec)
	if ver == 0 {
		ver = verJSON
	}
	buf = buf[:headerSize]
	buf[0], buf[1], buf[2], buf[3] = magic0, magic1, ver, f.Type
	binary.BigEndian.PutUint64(buf[4:], f.Stream)
	binary.BigEndian.PutUint32(buf[12:], uint32(len(f.Payload)))
	buf = append(buf, f.Payload...)
	sum := crc32.Checksum(buf, castagnoli)
	return binary.BigEndian.AppendUint32(buf, sum)
}

// writeFrame encodes and writes one frame.
func writeFrame(w io.Writer, f frame, maxFrame int) error {
	if len(f.Payload) > maxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(f.Payload))
	}
	_, err := w.Write(appendFrame(nil, f))
	return err
}

// readFrame reads and validates one frame. Corruption (bad magic,
// version, type or CRC) is ErrCorrupt; an oversized declared length is
// ErrFrameTooLarge. Both poison the connection — framing cannot be
// resynchronized mid-stream. A non-empty payload arrives in a pooled
// buffer: the caller owns it and releases it with putBuf once decoded.
func readFrame(r io.Reader, maxFrame int) (frame, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	if hdr[0] != magic0 || hdr[1] != magic1 {
		return frame{}, fmt.Errorf("%w: bad magic %02x%02x", ErrCorrupt, hdr[0], hdr[1])
	}
	if hdr[2] != verJSON && hdr[2] != verBinary {
		return frame{}, fmt.Errorf("%w: unknown version %d", ErrCorrupt, hdr[2])
	}
	ft := hdr[3]
	if ft < ftRequest || ft > ftEvents {
		return frame{}, fmt.Errorf("%w: unknown frame type %d", ErrCorrupt, ft)
	}
	length := binary.BigEndian.Uint32(hdr[12:])
	if int64(length) > int64(maxFrame) {
		return frame{}, fmt.Errorf("%w: declared %d bytes", ErrFrameTooLarge, length)
	}
	var payload []byte
	if length > 0 {
		payload = getBuf(int(length))[:length]
		if _, err := io.ReadFull(r, payload); err != nil {
			putBuf(payload)
			return frame{}, err
		}
	}
	var trailer [trailerSize]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		putBuf(payload)
		return frame{}, err
	}
	sum := crc32.Checksum(hdr[:], castagnoli)
	sum = crc32.Update(sum, castagnoli, payload)
	if got := binary.BigEndian.Uint32(trailer[:]); got != sum {
		putBuf(payload)
		return frame{}, fmt.Errorf("%w: checksum %08x, computed %08x", ErrCorrupt, got, sum)
	}
	return frame{Type: ft, Codec: codecID(hdr[2]), Stream: binary.BigEndian.Uint64(hdr[4:]), Payload: payload}, nil
}
