package wire

import (
	"bufio"
	"errors"
	"net"
	"sync"
)

// ErrConnClosed is returned by sends on a connection that has shut down
// (remote hangup, corruption, or local Close).
var ErrConnClosed = errors.New("wire: connection closed")

// defaultSendQueue bounds the per-connection outbound frame queue. A
// full queue blocks the sender — the same bounded-queue backpressure
// the orderer's per-peer delivery queues apply in-process: a slow
// connection slows its own users, never unrelated ones.
const defaultSendQueue = 256

// conn wraps a net.Conn with a single writer goroutine fed by a bounded
// frame queue. All frame writes go through send(), so concurrent calls
// and streams multiplex onto the socket without interleaving partial
// frames; reads stay with the owner (client or server loop).
type conn struct {
	nc       net.Conn
	maxFrame int

	sendQ chan frame
	done  chan struct{}

	closeOnce sync.Once
	mu        sync.Mutex
	err       error
}

func newConn(nc net.Conn, maxFrame int) *conn {
	c := &conn{
		nc:       nc,
		maxFrame: maxFrame,
		sendQ:    make(chan frame, defaultSendQueue),
		done:     make(chan struct{}),
	}
	go c.writeLoop()
	return c
}

// writeLoop drains the send queue onto the socket, flushing only when
// the queue runs dry — consecutive frames coalesce into one syscall.
func (c *conn) writeLoop() {
	bw := bufio.NewWriterSize(c.nc, 64<<10)
	var buf []byte
	for {
		select {
		case f := <-c.sendQ:
			buf = appendFrame(buf[:0], f)
			if _, err := bw.Write(buf); err != nil {
				c.close(err)
				return
			}
			if len(c.sendQ) == 0 {
				if err := bw.Flush(); err != nil {
					c.close(err)
					return
				}
			}
		case <-c.done:
			return
		}
	}
}

// send enqueues one frame, blocking when the queue is full. It fails
// once the connection is closed.
func (c *conn) send(f frame) error {
	if len(f.Payload) > c.maxFrame {
		return ErrFrameTooLarge
	}
	select {
	case c.sendQ <- f:
		return nil
	case <-c.done:
		return c.closeErr()
	}
}

// read reads the next frame from the socket.
func (c *conn) read() (frame, error) {
	return readFrame(c.nc, c.maxFrame)
}

// close tears the connection down once, recording the first cause.
func (c *conn) close(err error) {
	c.closeOnce.Do(func() {
		c.mu.Lock()
		if err == nil {
			err = ErrConnClosed
		}
		c.err = err
		c.mu.Unlock()
		close(c.done)
		c.nc.Close()
	})
}

// closeErr returns why the connection shut down.
func (c *conn) closeErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		return ErrConnClosed
	}
	return c.err
}
