package wire

import (
	"bufio"
	"errors"
	"net"
	"sync"
)

// ErrConnClosed is returned by sends on a connection that has shut down
// (remote hangup, corruption, or local Close).
var ErrConnClosed = errors.New("wire: connection closed")

// defaultSendQueue bounds the per-connection outbound frame queue. A
// full queue blocks the sender — the same bounded-queue backpressure
// the orderer's per-peer delivery queues apply in-process: a slow
// connection slows its own users, never unrelated ones.
const defaultSendQueue = 256

// connReadBuffer sizes the bufio.Reader in front of the socket: the
// header, payload and trailer reads of a frame amortize to about one
// read syscall per buffer-full of frames instead of three per frame.
const connReadBuffer = 64 << 10

// conn wraps a net.Conn with a single writer goroutine fed by a bounded
// queue of fully encoded frames. All frame writes go through send(), so
// concurrent calls and streams multiplex onto the socket without
// interleaving partial frames; reads stay with the owner (client or
// server loop) and go through a per-connection bufio.Reader.
//
// Buffer ownership across the queue is explicit: send() encodes the
// frame into a pooled buffer and hands it to writeLoop, which releases
// it after the socket write. Buffers still queued when the connection
// dies are dropped on the floor (the pool is an optimization, not an
// accounting ledger).
type conn struct {
	nc       net.Conn
	br       *bufio.Reader
	maxFrame int

	sendQ chan []byte
	done  chan struct{}

	closeOnce sync.Once
	mu        sync.Mutex
	err       error
}

func newConn(nc net.Conn, maxFrame int) *conn {
	c := &conn{
		nc:       nc,
		br:       bufio.NewReaderSize(nc, connReadBuffer),
		maxFrame: maxFrame,
		sendQ:    make(chan []byte, defaultSendQueue),
		done:     make(chan struct{}),
	}
	go c.writeLoop()
	return c
}

// writeLoop drains the send queue onto the socket, flushing only when
// the queue runs dry — consecutive frames coalesce into one syscall.
func (c *conn) writeLoop() {
	bw := bufio.NewWriterSize(c.nc, 64<<10)
	for {
		select {
		case buf := <-c.sendQ:
			_, err := bw.Write(buf)
			putBuf(buf)
			if err != nil {
				c.close(err)
				return
			}
			if len(c.sendQ) == 0 {
				if err := bw.Flush(); err != nil {
					c.close(err)
					return
				}
			}
		case <-c.done:
			return
		}
	}
}

// send encodes f into a pooled buffer and enqueues it, blocking when
// the queue is full. It fails once the connection is closed. The
// caller keeps ownership of f.Payload (it is copied into the frame
// buffer).
func (c *conn) send(f frame) error {
	if len(f.Payload) > c.maxFrame {
		return ErrFrameTooLarge
	}
	buf := appendFrame(getBuf(headerSize+len(f.Payload)+trailerSize), f)
	select {
	case c.sendQ <- buf:
		stats.framesOut.Add(1)
		stats.bytesOut.Add(uint64(len(buf)))
		return nil
	case <-c.done:
		putBuf(buf)
		return c.closeErr()
	}
}

// read reads the next frame through the connection's buffered reader.
func (c *conn) read() (frame, error) {
	f, err := readFrame(c.br, c.maxFrame)
	if err == nil {
		stats.framesIn.Add(1)
		stats.bytesIn.Add(uint64(headerSize + len(f.Payload) + trailerSize))
	}
	return f, err
}

// close tears the connection down once, recording the first cause.
func (c *conn) close(err error) {
	c.closeOnce.Do(func() {
		c.mu.Lock()
		if err == nil {
			err = ErrConnClosed
		}
		c.err = err
		c.mu.Unlock()
		close(c.done)
		c.nc.Close()
	})
}

// closeErr returns why the connection shut down.
func (c *conn) closeErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		return ErrConnClosed
	}
	return c.err
}
