// Package rwset defines the read/write sets produced in the execution
// phase and consumed by the validation phase, for both public data and
// private data collections.
//
// Semantics follow §III-B1 (Table I) of the paper:
//
//   - A read-only transaction has a read set of ⟨key, version⟩ pairs and a
//     null write set.
//   - A write-only transaction has a null read set and a write set of
//     ⟨key, value, is_delete=false⟩ entries.
//   - A read-write transaction carries both.
//   - A delete-only transaction has a null read set and a write set entry
//     with is_delete=true and a null value.
//
// Private (collection) read/write sets appear in two forms: the original
// form held by PDC members and gossiped among them, and the hashed form
// ⟨hash(key), hash(value), version⟩ that is embedded in the transaction
// and distributed to every peer in the channel.
package rwset

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/fabcrypto"
	"repro/internal/statedb"
)

// KVRead records that a key was read at a version during simulation. A
// zero Version means the key was absent.
type KVRead struct {
	Key     string          `json:"key"`
	Version statedb.Version `json:"version"`
}

// KVWrite records a write or delete produced by simulation.
type KVWrite struct {
	Key      string `json:"key"`
	Value    []byte `json:"value,omitempty"`
	IsDelete bool   `json:"is_delete,omitempty"`
}

// RangeQuery records a range scan performed during simulation together
// with the exact keys and versions it observed. The validator re-executes
// the range against the committed state and requires identical results,
// which rejects phantom reads: a key inserted into or deleted from the
// range between simulation and validation invalidates the transaction.
type RangeQuery struct {
	StartKey string   `json:"start_key"`
	EndKey   string   `json:"end_key"`
	Reads    []KVRead `json:"reads"`
}

// KVMetaWrite records an update to a key's validation parameter — the
// key-level ("state-based") endorsement policy mechanism of Fabric's
// validator_keylevel.go, the source file the paper cites for its policy
// routing analysis. Policy is a signature-policy expression.
type KVMetaWrite struct {
	Key    string `json:"key"`
	Policy string `json:"policy"`
}

// NsRWSet is the public read/write set of one chaincode namespace.
type NsRWSet struct {
	Namespace    string        `json:"namespace"`
	Reads        []KVRead      `json:"reads,omitempty"`
	Writes       []KVWrite     `json:"writes,omitempty"`
	RangeQueries []RangeQuery  `json:"range_queries,omitempty"`
	MetaWrites   []KVMetaWrite `json:"meta_writes,omitempty"`
}

// CollHashedRWSet is the hashed read/write set of one private data
// collection. Keys and values are SHA-256 digests; versions are original.
// This is the only collection material embedded in a transaction.
type CollHashedRWSet struct {
	Collection   string        `json:"collection"`
	HashedReads  []KVReadHash  `json:"hashed_reads,omitempty"`
	HashedWrites []KVWriteHash `json:"hashed_writes,omitempty"`
}

// KVReadHash is a hashed private read: the SHA-256 of the key plus the
// version observed. The version is public information obtainable by any
// peer through GetPrivateDataHash — the fact the paper's endorsement
// forgery exploits.
type KVReadHash struct {
	KeyHash []byte          `json:"key_hash"`
	Version statedb.Version `json:"version"`
}

// KVWriteHash is a hashed private write.
type KVWriteHash struct {
	KeyHash   []byte `json:"key_hash"`
	ValueHash []byte `json:"value_hash,omitempty"`
	IsDelete  bool   `json:"is_delete,omitempty"`
}

// CollPvtRWSet is the original (cleartext) private read/write set of one
// collection. It never enters a block; endorsers keep it in their
// transient store and gossip it to collection members.
type CollPvtRWSet struct {
	Collection string    `json:"collection"`
	Reads      []KVRead  `json:"reads,omitempty"`
	Writes     []KVWrite `json:"writes,omitempty"`
}

// TxRWSet is the complete simulation result of one transaction: public
// read/write sets per namespace and hashed collection read/write sets.
// This is what the proposal response carries and what validators check.
type TxRWSet struct {
	NsRWSets []NsRWSet         `json:"ns_rwsets,omitempty"`
	CollSets []CollHashedRWSet `json:"coll_sets,omitempty"`
}

// TxPvtRWSet is the private companion of a TxRWSet: the original
// collection read/write sets, distributed off-chain.
type TxPvtRWSet struct {
	TxID     string         `json:"tx_id"`
	CollSets []CollPvtRWSet `json:"coll_sets,omitempty"`
}

// Marshal returns the canonical JSON serialization of the TxRWSet. Slices
// are kept in deterministic (sorted) order by the Builder, so equal
// simulations marshal identically — the property the client's
// proposal-response consistency check relies on.
func (s *TxRWSet) Marshal() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		panic(fmt.Sprintf("rwset: marshal: %v", err))
	}
	return b
}

// UnmarshalTxRWSet decodes a TxRWSet serialized with Marshal.
func UnmarshalTxRWSet(b []byte) (*TxRWSet, error) {
	var s TxRWSet
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("rwset: unmarshal: %w", err)
	}
	return &s, nil
}

// Clone returns a deep copy of the collection set: the backing arrays of
// reads, writes and value bytes are all freshly allocated, so mutating
// the copy (or the original) cannot affect the other. The transient store
// clones on both persist and serve to keep peers' stores isolated.
func (c *CollPvtRWSet) Clone() *CollPvtRWSet {
	if c == nil {
		return nil
	}
	out := &CollPvtRWSet{Collection: c.Collection}
	if c.Reads != nil {
		out.Reads = append([]KVRead(nil), c.Reads...)
	}
	if c.Writes != nil {
		out.Writes = make([]KVWrite, len(c.Writes))
		for i, w := range c.Writes {
			out.Writes[i] = KVWrite{Key: w.Key, IsDelete: w.IsDelete}
			if w.Value != nil {
				out.Writes[i].Value = append([]byte(nil), w.Value...)
			}
		}
	}
	return out
}

// Clone returns a deep copy of the private set (see CollPvtRWSet.Clone).
func (s *TxPvtRWSet) Clone() *TxPvtRWSet {
	if s == nil {
		return nil
	}
	out := &TxPvtRWSet{TxID: s.TxID}
	if s.CollSets != nil {
		out.CollSets = make([]CollPvtRWSet, len(s.CollSets))
		for i := range s.CollSets {
			out.CollSets[i] = *s.CollSets[i].Clone()
		}
	}
	return out
}

// Marshal returns the canonical JSON serialization of the private set.
func (s *TxPvtRWSet) Marshal() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		panic(fmt.Sprintf("rwset: marshal pvt: %v", err))
	}
	return b
}

// UnmarshalTxPvtRWSet decodes a TxPvtRWSet serialized with Marshal.
func UnmarshalTxPvtRWSet(b []byte) (*TxPvtRWSet, error) {
	var s TxPvtRWSet
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("rwset: unmarshal pvt: %w", err)
	}
	return &s, nil
}

// HashPvtCollection converts an original collection read/write set into
// its hashed form. Members verify at commit time that the gossiped
// original hashes to the in-block hashed form via this same function.
func HashPvtCollection(pvt *CollPvtRWSet) CollHashedRWSet {
	h := CollHashedRWSet{Collection: pvt.Collection}
	for _, r := range pvt.Reads {
		h.HashedReads = append(h.HashedReads, KVReadHash{
			KeyHash: fabcrypto.HashString(r.Key),
			Version: r.Version,
		})
	}
	for _, w := range pvt.Writes {
		hw := KVWriteHash{KeyHash: fabcrypto.HashString(w.Key), IsDelete: w.IsDelete}
		if !w.IsDelete {
			hw.ValueHash = fabcrypto.Hash(w.Value)
		}
		h.HashedWrites = append(h.HashedWrites, hw)
	}
	return h
}

// MatchesHashed reports whether the original private set pvt hashes
// exactly to the hashed set h (same collection, same entries in the same
// order).
func MatchesHashed(pvt *CollPvtRWSet, h *CollHashedRWSet) bool {
	computed := HashPvtCollection(pvt)
	if computed.Collection != h.Collection ||
		len(computed.HashedReads) != len(h.HashedReads) ||
		len(computed.HashedWrites) != len(h.HashedWrites) {
		return false
	}
	for i, r := range computed.HashedReads {
		o := h.HashedReads[i]
		if r.Version != o.Version || !fabcrypto.Equal(r.KeyHash, o.KeyHash) {
			return false
		}
	}
	for i, w := range computed.HashedWrites {
		o := h.HashedWrites[i]
		if w.IsDelete != o.IsDelete ||
			!fabcrypto.Equal(w.KeyHash, o.KeyHash) ||
			!fabcrypto.Equal(w.ValueHash, o.ValueHash) {
			return false
		}
	}
	return true
}

// TxType classifies a transaction by its read/write set shape, following
// Table I of the paper.
type TxType string

// Transaction types of Table I.
const (
	TxReadOnly   TxType = "read-only"
	TxWriteOnly  TxType = "write-only"
	TxReadWrite  TxType = "read-write"
	TxDeleteOnly TxType = "delete-only"
	TxEmpty      TxType = "empty"
)

// Classify returns the Table I transaction type of a complete rwset,
// considering both public and hashed-collection entries.
func Classify(s *TxRWSet) TxType {
	var reads, writes, deletes int
	for _, ns := range s.NsRWSets {
		reads += len(ns.Reads) + len(ns.RangeQueries)
		writes += len(ns.MetaWrites)
		for _, w := range ns.Writes {
			if w.IsDelete {
				deletes++
			} else {
				writes++
			}
		}
	}
	for _, c := range s.CollSets {
		reads += len(c.HashedReads)
		for _, w := range c.HashedWrites {
			if w.IsDelete {
				deletes++
			} else {
				writes++
			}
		}
	}
	switch {
	case reads == 0 && writes == 0 && deletes == 0:
		return TxEmpty
	case reads > 0 && writes == 0 && deletes == 0:
		return TxReadOnly
	case reads == 0 && deletes > 0 && writes == 0:
		return TxDeleteOnly
	case reads == 0:
		return TxWriteOnly
	default:
		return TxReadWrite
	}
}

// ReadCollections returns the sorted names of collections the transaction
// read from; used by defense Feature 1 to route read-only PDC
// transactions to collection-level endorsement policies.
func ReadCollections(s *TxRWSet) []string {
	set := make(map[string]bool)
	for _, c := range s.CollSets {
		if len(c.HashedReads) > 0 {
			set[c.Collection] = true
		}
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// WriteCollections returns the sorted names of collections the
// transaction wrote to (including deletes); the validator uses this to
// select collection-level endorsement policies for write-related PDC
// transactions.
func WriteCollections(s *TxRWSet) []string {
	set := make(map[string]bool)
	for _, c := range s.CollSets {
		if len(c.HashedWrites) > 0 {
			set[c.Collection] = true
		}
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
