package rwset

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fabcrypto"
)

// TestTableI reproduces Table I of the paper: the read/write set shapes
// of the four transaction types operating on ⟨k1, val1⟩ at version 1.
func TestTableI(t *testing.T) {
	tests := []struct {
		name      string
		build     func(b *Builder)
		wantType  TxType
		wantReads []KVRead
		wantWrite []KVWrite
	}{
		{
			name: "read-only",
			build: func(b *Builder) {
				b.AddRead("cc", "k1", KVRead{Key: "k1", Version: 1})
			},
			wantType:  TxReadOnly,
			wantReads: []KVRead{{Key: "k1", Version: 1}},
			wantWrite: nil, // write set NULL
		},
		{
			name: "write-only",
			build: func(b *Builder) {
				b.AddWrite("cc", "k1", KVWrite{Key: "k1", Value: []byte("val1")})
			},
			wantType:  TxWriteOnly,
			wantReads: nil, // read set NULL
			wantWrite: []KVWrite{{Key: "k1", Value: []byte("val1"), IsDelete: false}},
		},
		{
			name: "read-write",
			build: func(b *Builder) {
				b.AddRead("cc", "k1", KVRead{Key: "k1", Version: 1})
				b.AddWrite("cc", "k1", KVWrite{Key: "k1", Value: []byte("val1")})
			},
			wantType:  TxReadWrite,
			wantReads: []KVRead{{Key: "k1", Version: 1}},
			wantWrite: []KVWrite{{Key: "k1", Value: []byte("val1"), IsDelete: false}},
		},
		{
			name: "delete-only",
			build: func(b *Builder) {
				b.AddWrite("cc", "k1", KVWrite{Key: "k1", IsDelete: true})
			},
			wantType:  TxDeleteOnly,
			wantReads: nil,                                                // read set NULL
			wantWrite: []KVWrite{{Key: "k1", Value: nil, IsDelete: true}}, // value null, is_delete true
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := NewBuilder()
			tt.build(b)
			set, _ := b.Build("tx1")
			if got := Classify(set); got != tt.wantType {
				t.Fatalf("Classify = %v, want %v", got, tt.wantType)
			}
			if len(set.NsRWSets) != 1 {
				t.Fatalf("namespaces = %d", len(set.NsRWSets))
			}
			ns := set.NsRWSets[0]
			if len(ns.Reads) != len(tt.wantReads) {
				t.Fatalf("reads = %+v, want %+v", ns.Reads, tt.wantReads)
			}
			for i, r := range tt.wantReads {
				if ns.Reads[i] != r {
					t.Errorf("read[%d] = %+v, want %+v", i, ns.Reads[i], r)
				}
			}
			if len(ns.Writes) != len(tt.wantWrite) {
				t.Fatalf("writes = %+v, want %+v", ns.Writes, tt.wantWrite)
			}
			for i, w := range tt.wantWrite {
				got := ns.Writes[i]
				if got.Key != w.Key || got.IsDelete != w.IsDelete || !bytes.Equal(got.Value, w.Value) {
					t.Errorf("write[%d] = %+v, want %+v", i, got, w)
				}
			}
		})
	}
}

func TestClassifyEdgeCases(t *testing.T) {
	if Classify(&TxRWSet{}) != TxEmpty {
		t.Error("empty set misclassified")
	}
	// Private-only sets classify too.
	b := NewBuilder()
	b.AddPvtRead("coll", "k", KVRead{Key: "k", Version: 2})
	set, _ := b.Build("tx")
	if Classify(set) != TxReadOnly {
		t.Error("private read-only misclassified")
	}
	b = NewBuilder()
	b.AddPvtWrite("coll", "k", KVWrite{Key: "k", IsDelete: true})
	set, _ = b.Build("tx")
	if Classify(set) != TxDeleteOnly {
		t.Error("private delete-only misclassified")
	}
	// Mixed delete+write counts as write-only per Table I grouping.
	b = NewBuilder()
	b.AddPvtWrite("coll", "k", KVWrite{Key: "k", Value: []byte("v")})
	b.AddPvtWrite("coll", "j", KVWrite{Key: "j", IsDelete: true})
	set, _ = b.Build("tx")
	if Classify(set) != TxWriteOnly {
		t.Errorf("write+delete = %v, want write-only", Classify(set))
	}
}

func TestFirstReadWinsLastWriteWins(t *testing.T) {
	b := NewBuilder()
	b.AddRead("cc", "k", KVRead{Key: "k", Version: 1})
	b.AddRead("cc", "k", KVRead{Key: "k", Version: 9}) // ignored
	b.AddWrite("cc", "k", KVWrite{Key: "k", Value: []byte("first")})
	b.AddWrite("cc", "k", KVWrite{Key: "k", Value: []byte("last")})
	set, _ := b.Build("tx")
	if set.NsRWSets[0].Reads[0].Version != 1 {
		t.Error("first read did not win")
	}
	if string(set.NsRWSets[0].Writes[0].Value) != "last" {
		t.Error("last write did not win")
	}
}

func TestHashedCollectionSets(t *testing.T) {
	b := NewBuilder()
	b.AddPvtRead("coll", "k1", KVRead{Key: "k1", Version: 3})
	b.AddPvtWrite("coll", "k2", KVWrite{Key: "k2", Value: []byte("secret")})
	set, pvt := b.Build("tx")

	if pvt == nil || len(pvt.CollSets) != 1 {
		t.Fatal("private set missing")
	}
	if len(set.CollSets) != 1 {
		t.Fatal("hashed set missing")
	}
	h := set.CollSets[0]
	if !fabcrypto.Equal(h.HashedReads[0].KeyHash, fabcrypto.HashString("k1")) {
		t.Error("read key hash wrong")
	}
	if h.HashedReads[0].Version != 3 {
		t.Error("read version not preserved in hashed form")
	}
	if !fabcrypto.Equal(h.HashedWrites[0].ValueHash, fabcrypto.Hash([]byte("secret"))) {
		t.Error("write value hash wrong")
	}
	// The cleartext never appears in the hashed set's serialization.
	if bytes.Contains(set.Marshal(), []byte("secret")) {
		t.Error("cleartext leaked into hashed rwset")
	}
	if !MatchesHashed(&pvt.CollSets[0], &h) {
		t.Error("original does not match its own hashed form")
	}
}

func TestMatchesHashedRejectsTampering(t *testing.T) {
	orig := &CollPvtRWSet{
		Collection: "coll",
		Writes:     []KVWrite{{Key: "k", Value: []byte("v")}},
	}
	h := HashPvtCollection(orig)

	tampered := &CollPvtRWSet{
		Collection: "coll",
		Writes:     []KVWrite{{Key: "k", Value: []byte("OTHER")}},
	}
	if MatchesHashed(tampered, &h) {
		t.Error("value tampering accepted")
	}
	wrongColl := *orig
	wrongColl.Collection = "other"
	if MatchesHashed(&wrongColl, &h) {
		t.Error("collection mismatch accepted")
	}
	extra := *orig
	extra.Writes = append(extra.Writes, KVWrite{Key: "k2", Value: []byte("v2")})
	if MatchesHashed(&extra, &h) {
		t.Error("extra write accepted")
	}
	del := &CollPvtRWSet{Collection: "coll", Writes: []KVWrite{{Key: "k", IsDelete: true}}}
	if MatchesHashed(del, &h) {
		t.Error("delete/write confusion accepted")
	}
}

// TestBuilderDeterminismQuick: inserting the same operations in any order
// yields byte-identical marshaled sets — the property the client's
// consistency check depends on.
func TestBuilderDeterminismQuick(t *testing.T) {
	keys := []string{"a", "b", "c", "d", "e"}
	build := func(order []int) []byte {
		b := NewBuilder()
		for _, i := range order {
			k := keys[i%len(keys)]
			b.AddRead("cc", k, KVRead{Key: k, Version: 1})
			b.AddWrite("cc", k, KVWrite{Key: k, Value: []byte(k)})
			b.AddPvtWrite("coll", k, KVWrite{Key: k, Value: []byte(k)})
		}
		set, _ := b.Build("tx")
		return set.Marshal()
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := rng.Perm(len(keys))
		ref := build([]int{0, 1, 2, 3, 4})
		return bytes.Equal(ref, build(order))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	b := NewBuilder()
	b.AddRead("cc", "k", KVRead{Key: "k", Version: 2})
	b.AddPvtWrite("coll", "p", KVWrite{Key: "p", Value: []byte("v")})
	set, pvt := b.Build("tx")

	again, err := UnmarshalTxRWSet(set.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Marshal(), set.Marshal()) {
		t.Error("TxRWSet round trip changed bytes")
	}
	pvtAgain, err := UnmarshalTxPvtRWSet(pvt.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if pvtAgain.TxID != "tx" || len(pvtAgain.CollSets) != 1 {
		t.Error("TxPvtRWSet round trip lost data")
	}
	if _, err := UnmarshalTxRWSet([]byte("{bad")); err == nil {
		t.Error("malformed rwset accepted")
	}
	if _, err := UnmarshalTxPvtRWSet([]byte("{bad")); err == nil {
		t.Error("malformed pvt rwset accepted")
	}
}

func TestReadWriteCollections(t *testing.T) {
	b := NewBuilder()
	b.AddPvtRead("collB", "k", KVRead{Key: "k", Version: 1})
	b.AddPvtRead("collA", "k", KVRead{Key: "k", Version: 1})
	b.AddPvtWrite("collC", "k", KVWrite{Key: "k", Value: []byte("v")})
	set, _ := b.Build("tx")

	reads := ReadCollections(set)
	if len(reads) != 2 || reads[0] != "collA" || reads[1] != "collB" {
		t.Fatalf("ReadCollections = %v", reads)
	}
	writes := WriteCollections(set)
	if len(writes) != 1 || writes[0] != "collC" {
		t.Fatalf("WriteCollections = %v", writes)
	}
}

func TestEmptyPvtSetIsNil(t *testing.T) {
	b := NewBuilder()
	b.AddRead("cc", "k", KVRead{Key: "k", Version: 1})
	_, pvt := b.Build("tx")
	if pvt != nil {
		t.Fatal("public-only simulation produced a private set")
	}
	if b.HasPvtWrites() {
		t.Fatal("HasPvtWrites true with no private writes")
	}
}
