package rwset

import "sort"

// Builder accumulates reads and writes during chaincode simulation and
// produces deterministic TxRWSet / TxPvtRWSet pairs. Endorsers across
// different peers that perform the same operations in any order produce
// byte-identical marshaled sets, which is what lets the client compare
// proposal responses from independent endorsers.
type Builder struct {
	pubReads   map[string]map[string]KVRead      // ns -> key -> read
	pubWrites  map[string]map[string]KVWrite     // ns -> key -> write
	pvtReads   map[string]map[string]KVRead      // collection -> key -> read
	pvtWrites  map[string]map[string]KVWrite     // collection -> key -> write
	rangeReads map[string][]RangeQuery           // ns -> range queries in order
	metaWrites map[string]map[string]KVMetaWrite // ns -> key -> meta write
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		pubReads:   make(map[string]map[string]KVRead),
		pubWrites:  make(map[string]map[string]KVWrite),
		pvtReads:   make(map[string]map[string]KVRead),
		pvtWrites:  make(map[string]map[string]KVWrite),
		rangeReads: make(map[string][]RangeQuery),
		metaWrites: make(map[string]map[string]KVMetaWrite),
	}
}

// AddRead records a public read of key at version ver. The first read of a
// key wins: later reads of the same key observe the simulated state, which
// by Fabric semantics reflects the same committed version.
func (b *Builder) AddRead(ns, key string, ver KVRead) {
	m := b.pubReads[ns]
	if m == nil {
		m = make(map[string]KVRead)
		b.pubReads[ns] = m
	}
	if _, ok := m[key]; !ok {
		m[key] = ver
	}
}

// AddWrite records a public write (or delete) of key. The last write of a
// key wins, matching Fabric's write-set collapsing.
func (b *Builder) AddWrite(ns, key string, w KVWrite) {
	m := b.pubWrites[ns]
	if m == nil {
		m = make(map[string]KVWrite)
		b.pubWrites[ns] = m
	}
	m[key] = w
}

// AddPvtRead records a private read of key in a collection.
func (b *Builder) AddPvtRead(collection, key string, r KVRead) {
	m := b.pvtReads[collection]
	if m == nil {
		m = make(map[string]KVRead)
		b.pvtReads[collection] = m
	}
	if _, ok := m[key]; !ok {
		m[key] = r
	}
}

// AddPvtWrite records a private write (or delete) of key in a collection.
func (b *Builder) AddPvtWrite(collection, key string, w KVWrite) {
	m := b.pvtWrites[collection]
	if m == nil {
		m = make(map[string]KVWrite)
		b.pvtWrites[collection] = m
	}
	m[key] = w
}

// AddRangeQuery records a range scan and its observed results, in query
// order.
func (b *Builder) AddRangeQuery(ns string, rq RangeQuery) {
	b.rangeReads[ns] = append(b.rangeReads[ns], rq)
}

// AddMetaWrite records an update to a key's validation parameter. The
// last write per key wins.
func (b *Builder) AddMetaWrite(ns, key string, w KVMetaWrite) {
	m := b.metaWrites[ns]
	if m == nil {
		m = make(map[string]KVMetaWrite)
		b.metaWrites[ns] = m
	}
	m[key] = w
}

// HasPvtWrites reports whether any private write has been recorded.
func (b *Builder) HasPvtWrites() bool {
	for _, m := range b.pvtWrites {
		if len(m) > 0 {
			return true
		}
	}
	return false
}

// Build produces the hashed TxRWSet for the proposal response and the
// original TxPvtRWSet for off-chain dissemination. All slices are sorted
// by namespace/collection then key.
func (b *Builder) Build(txID string) (*TxRWSet, *TxPvtRWSet) {
	tx := &TxRWSet{}

	nsNames := sortedKeys2(b.pubReads, b.pubWrites)
	nsNames = mergeSorted(nsNames, sortedKeys(b.rangeReads))
	nsNames = mergeSorted(nsNames, sortedKeys(b.metaWrites))
	for _, ns := range nsNames {
		set := NsRWSet{Namespace: ns}
		for _, key := range sortedKeys(b.pubReads[ns]) {
			set.Reads = append(set.Reads, b.pubReads[ns][key])
		}
		for _, key := range sortedKeys(b.pubWrites[ns]) {
			set.Writes = append(set.Writes, b.pubWrites[ns][key])
		}
		set.RangeQueries = append(set.RangeQueries, b.rangeReads[ns]...)
		for _, key := range sortedKeys(b.metaWrites[ns]) {
			set.MetaWrites = append(set.MetaWrites, b.metaWrites[ns][key])
		}
		tx.NsRWSets = append(tx.NsRWSets, set)
	}

	pvt := &TxPvtRWSet{TxID: txID}
	for _, coll := range sortedKeys2(b.pvtReads, b.pvtWrites) {
		orig := CollPvtRWSet{Collection: coll}
		for _, key := range sortedKeys(b.pvtReads[coll]) {
			orig.Reads = append(orig.Reads, b.pvtReads[coll][key])
		}
		for _, key := range sortedKeys(b.pvtWrites[coll]) {
			orig.Writes = append(orig.Writes, b.pvtWrites[coll][key])
		}
		tx.CollSets = append(tx.CollSets, HashPvtCollection(&orig))
		pvt.CollSets = append(pvt.CollSets, orig)
	}
	if len(pvt.CollSets) == 0 {
		pvt = nil
	}
	return tx, pvt
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// mergeSorted returns the sorted union of two sorted string slices.
func mergeSorted(a, b []string) []string {
	set := make(map[string]bool, len(a)+len(b))
	for _, s := range a {
		set[s] = true
	}
	for _, s := range b {
		set[s] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// sortedKeys2 returns the sorted union of the keys of two maps.
func sortedKeys2[A, B any](m1 map[string]A, m2 map[string]B) []string {
	set := make(map[string]bool, len(m1)+len(m2))
	for k := range m1 {
		set[k] = true
	}
	for k := range m2 {
		set[k] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
