package endorser

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/chaincode"
	"repro/internal/core"
	"repro/internal/fabcrypto"
	"repro/internal/gossip"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/pvtdata"
	"repro/internal/rwset"
	"repro/internal/statedb"
)

// env wires a standalone endorser for one peer org.
type env struct {
	endorser *Endorser
	verifier *identity.Verifier
	ca       *identity.CA
	clientID *identity.Identity
	db       *statedb.DB
	pvt      *pvtdata.Store
	trans    *pvtdata.TransientStore
	gossip   *gossip.Network
}

func testDef() *chaincode.Definition {
	return &chaincode.Definition{
		Name:    "cc",
		Version: "1.0",
		Collections: []pvtdata.CollectionConfig{{
			Name:         "pdc1",
			MemberPolicy: "OR(org1.member, org2.member)",
			MaxPeerCount: 3,
		}},
	}
}

func newEnv(t *testing.T, peerOrg string, sec core.SecurityConfig) *env {
	t.Helper()
	ca, err := identity.NewCA(peerOrg)
	if err != nil {
		t.Fatal(err)
	}
	peerID, err := ca.Issue("peer0."+peerOrg, identity.RolePeer)
	if err != nil {
		t.Fatal(err)
	}
	clientID, err := ca.Issue("client0."+peerOrg, identity.RoleClient)
	if err != nil {
		t.Fatal(err)
	}
	verifier := identity.NewVerifier()
	verifier.TrustCA(peerOrg, ca.PublicKey())

	db := statedb.New()
	pvt := pvtdata.NewStore(db)
	trans := pvtdata.NewTransientStore()
	gos := gossip.NewNetwork()
	registry := chaincode.NewRegistry()
	registry.Install("cc", chaincode.Router{
		"put": func(stub chaincode.Stub) ledger.Response {
			if err := stub.PutState("k", []byte("v")); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			return chaincode.SuccessResponse([]byte("done"))
		},
		"putPvt": func(stub chaincode.Stub) ledger.Response {
			if err := stub.PutPrivateData("pdc1", "k", []byte("secret")); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			return chaincode.SuccessResponse([]byte("secret"))
		},
		"fail": func(stub chaincode.Stub) ledger.Response {
			return chaincode.ErrorResponse("business rule violated")
		},
	})

	def := testDef()
	e := New(Config{
		Identity:  peerID,
		Verifier:  verifier,
		Registry:  registry,
		Defs:      func(name string) *chaincode.Definition { return map[string]*chaincode.Definition{"cc": def}[name] },
		DB:        db,
		Pvt:       pvt,
		Transient: trans,
		Gossip:    gos,
		Security:  sec,
	})
	return &env{endorser: e, verifier: verifier, ca: ca, clientID: clientID,
		db: db, pvt: pvt, trans: trans, gossip: gos}
}

func (e *env) proposal(t *testing.T, fn string) *ledger.Proposal {
	t.Helper()
	nonce, err := ledger.NewNonce()
	if err != nil {
		t.Fatal(err)
	}
	creator := e.clientID.Cert.Bytes()
	return &ledger.Proposal{
		TxID:      ledger.NewTxID(nonce, creator),
		Chaincode: "cc",
		Function:  fn,
		Creator:   creator,
		Nonce:     nonce,
	}
}

func TestEndorseProducesVerifiableSignature(t *testing.T) {
	e := newEnv(t, "org1", core.OriginalFabric())
	resp, err := e.endorser.ProcessProposal(e.proposal(t, "put"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Response.Payload) != "done" {
		t.Fatalf("payload = %q", resp.Response.Payload)
	}
	cert, err := identity.ParseCertificate(resp.Endorsement.Endorser)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.verifier.VerifySignature(cert, resp.Payload, resp.Endorsement.Signature); err != nil {
		t.Fatalf("endorsement signature invalid: %v", err)
	}
	// Plain mode: no PlainPayload side channel.
	if resp.PlainPayload != nil {
		t.Fatal("PlainPayload set without Feature 2")
	}
	// Simulation did not commit.
	if _, _, ok := e.db.Get("cc", "k"); ok {
		t.Fatal("endorsement committed state")
	}
}

func TestChaincodeFailureWithholdsEndorsement(t *testing.T) {
	e := newEnv(t, "org1", core.OriginalFabric())
	_, err := e.endorser.ProcessProposal(e.proposal(t, "fail"))
	if !errors.Is(err, ErrChaincodeFailed) {
		t.Fatalf("err = %v, want ErrChaincodeFailed", err)
	}
}

func TestUnknownChaincodeRejected(t *testing.T) {
	e := newEnv(t, "org1", core.OriginalFabric())
	prop := e.proposal(t, "put")
	prop.Chaincode = "ghost"
	_, err := e.endorser.ProcessProposal(prop)
	if !errors.Is(err, ErrChaincodeNotFound) {
		t.Fatalf("err = %v, want ErrChaincodeNotFound", err)
	}
}

func TestBadCreatorRejected(t *testing.T) {
	e := newEnv(t, "org1", core.OriginalFabric())
	prop := e.proposal(t, "put")
	prop.Creator = []byte("garbage")
	if _, err := e.endorser.ProcessProposal(prop); !errors.Is(err, ErrBadCreator) {
		t.Fatalf("err = %v, want ErrBadCreator", err)
	}

	// A certificate from an untrusted CA is also rejected.
	rogueCA, _ := identity.NewCA("rogue")
	rogueClient, _ := rogueCA.Issue("client0.rogue", identity.RoleClient)
	prop = e.proposal(t, "put")
	prop.Creator = rogueClient.Cert.Bytes()
	if _, err := e.endorser.ProcessProposal(prop); !errors.Is(err, ErrBadCreator) {
		t.Fatalf("err = %v, want ErrBadCreator", err)
	}
}

func TestPrivateWritePersistsTransient(t *testing.T) {
	e := newEnv(t, "org1", core.OriginalFabric())
	prop := e.proposal(t, "putPvt")
	if _, err := e.endorser.ProcessProposal(prop); err != nil {
		t.Fatal(err)
	}
	set := e.trans.Get(prop.TxID)
	if set == nil || len(set.CollSets) != 1 {
		t.Fatal("transient store empty after private endorsement")
	}
	if string(set.CollSets[0].Writes[0].Value) != "secret" {
		t.Fatal("original value not in transient store")
	}
}

func TestDisseminationFailureWithholdsEndorsement(t *testing.T) {
	e := newEnv(t, "org1", core.OriginalFabric())
	// Require one other member peer; none is registered on the gossip
	// network, so dissemination must fail and no endorsement returned.
	def := testDef()
	def.Collections[0].RequiredPeerCount = 1
	e.endorser.defs = func(string) *chaincode.Definition { return def }

	_, err := e.endorser.ProcessProposal(e.proposal(t, "putPvt"))
	if !errors.Is(err, gossip.ErrDisseminationShort) {
		t.Fatalf("err = %v, want ErrDisseminationShort", err)
	}
}

func TestFeature2SignsHashedForm(t *testing.T) {
	e := newEnv(t, "org1", core.Feature2Only())
	resp, err := e.endorser.ProcessProposal(e.proposal(t, "putPvt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.PlainPayload) == 0 {
		t.Fatal("Feature 2 endorser returned no PR_Ori")
	}
	// The signed payload is the hashed form of the plain form.
	plain, err := ledger.ParseProposalResponsePayload(resp.PlainPayload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.HashedPayloadForm().Bytes(), resp.Payload) {
		t.Fatal("signed payload is not PR_Hash of PR_Ori")
	}
	// The signed form's payload equals SHA-256 of the plaintext.
	signed, err := ledger.ParseProposalResponsePayload(resp.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !fabcrypto.Equal(signed.Response.Payload, fabcrypto.Hash([]byte("secret"))) {
		t.Fatal("hashed payload wrong")
	}
	// The signature covers PR_Hash, not PR_Ori.
	cert, _ := identity.ParseCertificate(resp.Endorsement.Endorser)
	if err := e.verifier.VerifySignature(cert, resp.Payload, resp.Endorsement.Signature); err != nil {
		t.Fatalf("signature over PR_Hash invalid: %v", err)
	}
	if err := e.verifier.VerifySignature(cert, resp.PlainPayload, resp.Endorsement.Signature); err == nil {
		t.Fatal("signature also verifies over PR_Ori — hashing had no effect")
	}
}

func TestRWSetsEmbeddedHashed(t *testing.T) {
	e := newEnv(t, "org1", core.OriginalFabric())
	resp, err := e.endorser.ProcessProposal(e.proposal(t, "putPvt"))
	if err != nil {
		t.Fatal(err)
	}
	prp, err := ledger.ParseProposalResponsePayload(resp.Payload)
	if err != nil {
		t.Fatal(err)
	}
	set, err := prp.RWSet()
	if err != nil {
		t.Fatal(err)
	}
	if len(set.CollSets) != 1 {
		t.Fatal("collection set missing")
	}
	hw := set.CollSets[0].HashedWrites[0]
	if !fabcrypto.Equal(hw.KeyHash, fabcrypto.HashString("k")) ||
		!fabcrypto.Equal(hw.ValueHash, fabcrypto.Hash([]byte("secret"))) {
		t.Fatal("hashed write content wrong")
	}
	if rwset.Classify(set) != rwset.TxWriteOnly {
		t.Fatalf("classified %v", rwset.Classify(set))
	}
	// The read/write set never contains the cleartext — but the
	// Response.Payload does (Use Case 3: the chaincode returned it),
	// which is exactly the exposure the paper analyzes.
	if bytes.Contains(prp.Results, []byte("secret")) {
		t.Fatal("cleartext leaked into the hashed rwset")
	}
	if string(prp.Response.Payload) != "secret" {
		t.Fatal("payload exposure (Use Case 3) not present without Feature 2")
	}
}
