// Package endorser implements the execution phase of the three-phase
// transaction workflow (paper §II-B1): simulating a proposal against the
// peer's world state, building the (hashed, for PDC) read/write sets,
// signing the proposal response, and disseminating original private data
// to collection members via gossip.
//
// Defense Feature 2 (§IV-C2) plugs in here: instead of signing the
// proposal response with the plaintext "payload", the endorser signs the
// hashed-payload form PR_Hash and returns (PR_Ori, Sign(PR_Hash)) so the
// client gets its value while the transaction carries only the hash.
package endorser

import (
	"errors"
	"fmt"

	"repro/internal/chaincode"
	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/pvtdata"
	"repro/internal/rwset"
	"repro/internal/statedb"
)

// Errors returned by ProcessProposal.
var (
	// ErrChaincodeNotFound: no implementation installed for the
	// requested chaincode on this peer.
	ErrChaincodeNotFound = errors.New("endorser: chaincode not installed")
	// ErrChaincodeFailed: the chaincode function returned an error
	// response, so no endorsement is produced.
	ErrChaincodeFailed = errors.New("endorser: chaincode execution failed")
	// ErrBadCreator: the proposal creator's certificate is invalid.
	ErrBadCreator = errors.New("endorser: invalid creator certificate")
)

// Endorser is the endorsement engine of one peer.
type Endorser struct {
	id        *identity.Identity
	verifier  *identity.Verifier
	registry  *chaincode.Registry
	defs      func(name string) *chaincode.Definition
	db        *statedb.DB
	pvt       *pvtdata.Store
	transient *pvtdata.TransientStore
	gossip    *gossip.Network
	sec       core.SecurityConfig
}

// Config wires an Endorser.
type Config struct {
	Identity  *identity.Identity
	Verifier  *identity.Verifier
	Registry  *chaincode.Registry
	Defs      func(name string) *chaincode.Definition
	DB        *statedb.DB
	Pvt       *pvtdata.Store
	Transient *pvtdata.TransientStore
	Gossip    *gossip.Network
	Security  core.SecurityConfig
}

// New creates an endorser.
func New(cfg Config) *Endorser {
	return &Endorser{
		id:        cfg.Identity,
		verifier:  cfg.Verifier,
		registry:  cfg.Registry,
		defs:      cfg.Defs,
		db:        cfg.DB,
		pvt:       cfg.Pvt,
		transient: cfg.Transient,
		gossip:    cfg.Gossip,
		sec:       cfg.Security,
	}
}

// SetSecurity swaps the active security configuration (used by the
// benchmark harness to compare original and defended frameworks on the
// same network).
func (e *Endorser) SetSecurity(sec core.SecurityConfig) { e.sec = sec }

// safeInvoke runs chaincode with panic isolation: user code (including a
// maliciously crashing customized chaincode) must not take the peer
// down. A panic becomes a failed endorsement, as a crashed chaincode
// container would in Fabric.
func safeInvoke(impl chaincode.Chaincode, stub chaincode.Stub) (resp ledger.Response) {
	defer func() {
		if r := recover(); r != nil {
			resp = ledger.Response{
				Status:  ledger.StatusError,
				Message: fmt.Sprintf("chaincode panicked: %v", r),
			}
		}
	}()
	return impl.Invoke(stub)
}

// ProcessProposal simulates the proposal and returns a signed proposal
// response. The ledger is not updated (execution phase only). For PDC
// writes, the original private set is persisted to the transient store
// and disseminated to member peers before the endorsement is returned.
func (e *Endorser) ProcessProposal(prop *ledger.Proposal) (*ledger.ProposalResponse, error) {
	creator, err := identity.ParseCertificate(prop.Creator)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCreator, err)
	}
	if err := e.verifier.ValidateCertificate(creator); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCreator, err)
	}

	def := e.defs(prop.Chaincode)
	impl := e.registry.Get(prop.Chaincode)
	if def == nil || impl == nil {
		return nil, fmt.Errorf("%w: %q on %s", ErrChaincodeNotFound, prop.Chaincode, e.id.Subject())
	}

	builder := rwset.NewBuilder()
	stub := chaincode.NewSimStub(prop, creator, e.id.MSPID(), def, e.db, e.pvt, builder)
	stub.SetResolver(func(name string) (*chaincode.Definition, chaincode.Chaincode) {
		return e.defs(name), e.registry.Get(name)
	})
	// Release the simulation's state snapshot once endorsement finishes
	// so later commits stop copy-on-writing on its behalf.
	defer stub.Close()
	resp := safeInvoke(impl, stub)
	if resp.Status != ledger.StatusOK {
		return nil, fmt.Errorf("%w: %s", ErrChaincodeFailed, resp.Message)
	}

	txRW, pvtRW := builder.Build(prop.TxID)
	prp := &ledger.ProposalResponsePayload{
		TxID:      prop.TxID,
		Chaincode: prop.Chaincode,
		Response:  resp,
		Results:   txRW.Marshal(),
		Event:     stub.Event(),
	}

	// Dissemination happens before signing: an endorsement must not be
	// returned if the private data cannot reach RequiredPeerCount
	// member peers.
	if pvtRW != nil {
		e.transient.Persist(pvtRW)
		for i := range pvtRW.CollSets {
			coll := &pvtRW.CollSets[i]
			if len(coll.Writes) == 0 {
				continue
			}
			cfg := def.Collection(coll.Collection)
			if cfg == nil {
				return nil, fmt.Errorf("endorser: tx %s: unknown collection %q", prop.TxID, coll.Collection)
			}
			if err := e.gossip.Disseminate(e.id.Subject(), cfg, prop.TxID, coll); err != nil {
				return nil, fmt.Errorf("endorser: tx %s: %w", prop.TxID, err)
			}
		}
	}

	out := &ledger.ProposalResponse{Response: resp}
	if e.sec.HashedPayloadEndorsement {
		// Feature 2: sign PR_Hash, return PR_Ori alongside.
		hashed := prp.HashedPayloadForm().Bytes()
		out.Payload = hashed
		out.PlainPayload = prp.Bytes()
	} else {
		out.Payload = prp.Bytes()
	}
	sig, err := e.id.Sign(out.Payload)
	if err != nil {
		return nil, fmt.Errorf("endorser: sign response for tx %s: %w", prop.TxID, err)
	}
	out.Endorsement = ledger.Endorsement{
		Endorser:  e.id.Cert.Bytes(),
		Signature: sig,
	}
	return out, nil
}
