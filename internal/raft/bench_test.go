package raft

import (
	"fmt"
	"testing"
)

// BenchmarkCommitLatency measures a full propose-to-commit round as the
// ordering cluster grows — the consensus cost underlying every block the
// orderer cuts.
func BenchmarkCommitLatency(b *testing.B) {
	for _, size := range []int{1, 3, 5, 7} {
		b.Run(fmt.Sprintf("nodes=%d", size), func(b *testing.B) {
			c := NewCluster(size, 99)
			if _, err := c.ElectLeader(500); err != nil {
				b.Fatal(err)
			}
			payload := []byte("tx-payload")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Propose(payload, 500); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkProposeBatch compares ordering N transactions one raft round
// at a time (N sequential Propose calls) against the multi-entry append
// path (one ProposeBatch call): the batch pays the round-trip and
// tick-to-commit cost once, so it should beat the sequential path by a
// wide margin (the pipelined orderer acceptance floor is 3x at N=100).
func BenchmarkProposeBatch(b *testing.B) {
	const n = 100
	payload := []byte("tx-payload")
	datas := make([][]byte, n)
	for i := range datas {
		datas[i] = payload
	}
	b.Run(fmt.Sprintf("sequential/n=%d", n), func(b *testing.B) {
		c := NewCluster(3, 99)
		if _, err := c.ElectLeader(500); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				if _, err := c.Propose(payload, 500); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run(fmt.Sprintf("batched/n=%d", n), func(b *testing.B) {
		c := NewCluster(3, 99)
		if _, err := c.ElectLeader(500); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := c.ProposeBatch(datas, 500); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkElection measures leader election from a cold cluster.
func BenchmarkElection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := NewCluster(5, int64(i))
		if _, err := c.ElectLeader(500); err != nil {
			b.Fatal(err)
		}
	}
}
