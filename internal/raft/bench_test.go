package raft

import (
	"fmt"
	"testing"
)

// BenchmarkCommitLatency measures a full propose-to-commit round as the
// ordering cluster grows — the consensus cost underlying every block the
// orderer cuts.
func BenchmarkCommitLatency(b *testing.B) {
	for _, size := range []int{1, 3, 5, 7} {
		b.Run(fmt.Sprintf("nodes=%d", size), func(b *testing.B) {
			c := NewCluster(size, 99)
			if _, err := c.ElectLeader(500); err != nil {
				b.Fatal(err)
			}
			payload := []byte("tx-payload")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Propose(payload, 500); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkElection measures leader election from a cold cluster.
func BenchmarkElection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := NewCluster(5, int64(i))
		if _, err := c.ElectLeader(500); err != nil {
			b.Fatal(err)
		}
	}
}
