package raft

import (
	"errors"
	"fmt"
)

// Cluster is an in-memory harness running a set of raft nodes over a
// lossless (but partitionable) transport. It is the substrate of the
// ordering service and of the raft test suite. Cluster is not safe for
// concurrent use; the orderer serializes access.
type Cluster struct {
	nodes map[NodeID]*Node
	order []NodeID
	// down marks crashed nodes; their messages are dropped and they
	// receive nothing.
	down map[NodeID]bool
	// cut maps blocked (from -> to) links for partition testing.
	cut map[[2]NodeID]bool
	// inbox holds in-flight messages.
	inbox []Message
	// committed accumulates entries in commit order, deduplicated by
	// index, as observed on any live node (all nodes agree by raft
	// safety; tests assert this explicitly).
	committed     []Entry
	nextCommitIdx uint64
}

// ErrNoLeader is returned when the cluster cannot elect a leader (e.g.
// because a majority is down).
var ErrNoLeader = errors.New("raft: no leader elected")

// NewCluster creates and wires n nodes named "node1".."nodeN".
func NewCluster(n int, seed int64) *Cluster {
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(fmt.Sprintf("node%d", i+1))
	}
	c := &Cluster{
		nodes:         make(map[NodeID]*Node, n),
		order:         ids,
		down:          make(map[NodeID]bool),
		cut:           make(map[[2]NodeID]bool),
		nextCommitIdx: 1,
	}
	for i, id := range ids {
		c.nodes[id] = NewNode(Config{
			ID:    id,
			Peers: ids,
			Seed:  seed + int64(i)*7919,
		})
	}
	return c
}

// Nodes returns the node IDs in creation order.
func (c *Cluster) Nodes() []NodeID { return append([]NodeID(nil), c.order...) }

// Node returns a node by ID (nil if unknown).
func (c *Cluster) Node(id NodeID) *Node { return c.nodes[id] }

// Leader returns the current leader node, or nil.
func (c *Cluster) Leader() *Node {
	for _, id := range c.order {
		n := c.nodes[id]
		if !c.down[id] && n.State() == Leader {
			// Ignore stale leaders from older terms.
			isCurrent := true
			for _, other := range c.nodes {
				if other.Term() > n.Term() {
					isCurrent = false
					break
				}
			}
			if isCurrent {
				return n
			}
		}
	}
	return nil
}

// Crash takes a node offline; its state is retained for Restart.
func (c *Cluster) Crash(id NodeID) { c.down[id] = true }

// Restart brings a crashed node back online. (Volatile raft state such as
// votes persists here because the harness keeps the node object; the
// safety-critical persistent state — term, votedFor, log — is exactly what
// real raft persists.)
func (c *Cluster) Restart(id NodeID) { delete(c.down, id) }

// Partition severs bidirectional connectivity between two groups of nodes.
func (c *Cluster) Partition(groupA, groupB []NodeID) {
	for _, a := range groupA {
		for _, b := range groupB {
			c.cut[[2]NodeID{a, b}] = true
			c.cut[[2]NodeID{b, a}] = true
		}
	}
}

// Heal removes all partitions.
func (c *Cluster) Heal() { c.cut = make(map[[2]NodeID]bool) }

// Tick advances every live node one logical tick and delivers all
// resulting messages to quiescence.
func (c *Cluster) Tick() {
	for _, id := range c.order {
		if !c.down[id] {
			c.nodes[id].Tick()
		}
	}
	c.drain()
}

// drain exchanges messages until no node has pending output.
func (c *Cluster) drain() {
	for {
		for _, id := range c.order {
			n := c.nodes[id]
			msgs, committed := n.Ready()
			if !c.down[id] {
				c.recordCommitted(committed)
				for _, m := range msgs {
					if c.down[m.To] || c.cut[[2]NodeID{m.From, m.To}] {
						continue
					}
					c.inbox = append(c.inbox, m)
				}
			}
		}
		if len(c.inbox) == 0 {
			return
		}
		pending := c.inbox
		c.inbox = nil
		for _, m := range pending {
			if c.down[m.To] {
				continue
			}
			c.nodes[m.To].Step(m)
		}
	}
}

func (c *Cluster) recordCommitted(entries []Entry) {
	for _, e := range entries {
		if e.Index == c.nextCommitIdx {
			c.committed = append(c.committed, e)
			c.nextCommitIdx++
		}
	}
}

// Committed returns the globally committed entries observed so far, with
// leader no-op (empty) entries filtered out.
func (c *Cluster) Committed() []Entry {
	var out []Entry
	for _, e := range c.committed {
		if len(e.Data) > 0 {
			out = append(out, e)
		}
	}
	return out
}

// Compact compacts every live node's log up to min(upTo, applied) —
// entries already consumed by the application. Crashed nodes keep their
// logs and will be caught up via snapshot on restart.
func (c *Cluster) Compact(upTo uint64) {
	for _, id := range c.order {
		if c.down[id] {
			continue
		}
		n := c.nodes[id]
		limit := upTo
		if n.applied < limit {
			limit = n.applied
		}
		_ = n.Compact(limit) // bounded by applied, cannot fail
	}
}

// ElectLeader ticks until a leader emerges, returning it. It gives up
// after maxTicks.
func (c *Cluster) ElectLeader(maxTicks int) (*Node, error) {
	if l := c.Leader(); l != nil {
		return l, nil
	}
	for i := 0; i < maxTicks; i++ {
		c.Tick()
		if l := c.Leader(); l != nil {
			return l, nil
		}
	}
	return nil, ErrNoLeader
}

// Propose submits data through the current leader (electing one first if
// needed) and ticks until the entry commits. It returns the committed
// entry's index.
func (c *Cluster) Propose(data []byte, maxTicks int) (uint64, error) {
	idx, _, err := c.ProposeBatch([][]byte{data}, maxTicks)
	return idx, err
}

// ProposeBatch submits a batch of entries through the current leader
// (electing one first if needed) in a single consensus round: the leader
// appends all entries locally and replicates them with one
// AppendEntries exchange, then the cluster ticks until the whole batch
// commits. N batched entries cost one round instead of N — the
// throughput lever of the pipelined ordering service. Returns the index
// range [first, last] of the committed entries.
func (c *Cluster) ProposeBatch(datas [][]byte, maxTicks int) (first, last uint64, err error) {
	if len(datas) == 0 {
		return 0, 0, nil
	}
	leader, err := c.ElectLeader(maxTicks)
	if err != nil {
		return 0, 0, err
	}
	first, last, err = leader.ProposeBatch(datas)
	if err != nil {
		return 0, 0, fmt.Errorf("raft: propose via %s: %w", leader.ID(), err)
	}
	c.drain()
	for i := 0; i < maxTicks; i++ {
		if c.nextCommitIdx > last {
			return first, last, nil
		}
		c.Tick()
	}
	if c.nextCommitIdx > last {
		return first, last, nil
	}
	return 0, 0, fmt.Errorf("raft: entry %d did not commit within %d ticks", last, maxTicks)
}
