package raft

import (
	"fmt"
	"testing"
	"testing/quick"
)

func mustElect(t *testing.T, c *Cluster) *Node {
	t.Helper()
	leader, err := c.ElectLeader(500)
	if err != nil {
		t.Fatalf("no leader: %v", err)
	}
	return leader
}

func TestSingleNodeBecomesLeader(t *testing.T) {
	c := NewCluster(1, 1)
	leader := mustElect(t, c)
	if leader.State() != Leader {
		t.Fatal("single node not leader")
	}
	if _, err := c.Propose([]byte("x"), 100); err != nil {
		t.Fatalf("propose: %v", err)
	}
	if got := c.Committed(); len(got) != 1 || string(got[0].Data) != "x" {
		t.Fatalf("committed = %v", got)
	}
}

func TestThreeNodeElection(t *testing.T) {
	c := NewCluster(3, 42)
	leader := mustElect(t, c)

	// Exactly one current-term leader.
	leaders := 0
	for _, id := range c.Nodes() {
		n := c.Node(id)
		if n.State() == Leader && n.Term() == leader.Term() {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("leaders = %d", leaders)
	}
	// Followers learn the leader.
	for i := 0; i < 5; i++ {
		c.Tick()
	}
	for _, id := range c.Nodes() {
		if got := c.Node(id).Leader(); got != leader.ID() {
			t.Fatalf("node %s believes leader is %q", id, got)
		}
	}
}

func TestReplicationAcrossNodes(t *testing.T) {
	c := NewCluster(3, 7)
	for i := 0; i < 5; i++ {
		if _, err := c.Propose([]byte(fmt.Sprintf("entry%d", i)), 200); err != nil {
			t.Fatalf("propose %d: %v", i, err)
		}
	}
	committed := c.Committed()
	if len(committed) != 5 {
		t.Fatalf("committed %d entries", len(committed))
	}
	for i, e := range committed {
		if string(e.Data) != fmt.Sprintf("entry%d", i) {
			t.Fatalf("entry %d = %q", i, e.Data)
		}
	}
	// All nodes agree on the committed prefix (log matching).
	for i := 0; i < 10; i++ {
		c.Tick()
	}
	ref := c.Node(c.Nodes()[0])
	for _, id := range c.Nodes()[1:] {
		n := c.Node(id)
		limit := min(ref.CommitIndex(), n.CommitIndex())
		a := ref.Entries(0, limit)
		b := n.Entries(0, limit)
		if len(a) != len(b) {
			t.Fatalf("logs differ in length")
		}
		for j := range a {
			if a[j].Term != b[j].Term || string(a[j].Data) != string(b[j].Data) {
				t.Fatalf("log mismatch at %d", j)
			}
		}
	}
}

func TestLeaderCrashTriggersReelection(t *testing.T) {
	c := NewCluster(3, 11)
	old := mustElect(t, c)
	if _, err := c.Propose([]byte("before"), 200); err != nil {
		t.Fatal(err)
	}

	c.Crash(old.ID())
	newLeader, err := c.ElectLeader(500)
	if err != nil {
		t.Fatalf("no new leader after crash: %v", err)
	}
	if newLeader.ID() == old.ID() {
		t.Fatal("crashed node still leader")
	}
	if newLeader.Term() <= old.Term() {
		t.Fatal("term did not advance")
	}

	// The cluster keeps committing.
	if _, err := c.Propose([]byte("after"), 500); err != nil {
		t.Fatalf("propose after crash: %v", err)
	}
	entries := c.Committed()
	if len(entries) != 2 || string(entries[1].Data) != "after" {
		t.Fatalf("committed = %v", entries)
	}

	// The crashed node catches up after restart.
	c.Restart(old.ID())
	for i := 0; i < 50; i++ {
		c.Tick()
	}
	if old.CommitIndex() < newLeader.CommitIndex() {
		t.Fatalf("restarted node commit %d < leader %d", old.CommitIndex(), newLeader.CommitIndex())
	}
}

func TestMinorityPartitionCannotCommit(t *testing.T) {
	c := NewCluster(5, 13)
	leader := mustElect(t, c)

	// Isolate the leader with one follower (minority).
	var minority, majority []NodeID
	minority = append(minority, leader.ID())
	for _, id := range c.Nodes() {
		if id == leader.ID() {
			continue
		}
		if len(minority) < 2 {
			minority = append(minority, id)
		} else {
			majority = append(majority, id)
		}
	}
	c.Partition(minority, majority)

	// The old leader can append locally but must not commit.
	before := leader.CommitIndex()
	if _, err := leader.Propose([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c.Tick()
	}
	if leader.CommitIndex() > before+0 && leader.log[leader.CommitIndex()].Term == leader.Term() && leader.CommitIndex() >= leader.LastIndex() {
		t.Fatal("minority leader committed an entry")
	}

	// The majority elects its own leader and commits.
	var majLeader *Node
	for i := 0; i < 500 && majLeader == nil; i++ {
		c.Tick()
		for _, id := range majority {
			if c.Node(id).State() == Leader {
				majLeader = c.Node(id)
			}
		}
	}
	if majLeader == nil {
		t.Fatal("majority elected no leader")
	}
	idx, err := majLeader.Propose([]byte("survives"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c.Tick()
	}
	if majLeader.CommitIndex() < idx {
		t.Fatal("majority could not commit")
	}

	// Heal: the doomed entry is overwritten everywhere.
	c.Heal()
	for i := 0; i < 200; i++ {
		c.Tick()
	}
	for _, id := range c.Nodes() {
		n := c.Node(id)
		found := false
		for _, e := range n.Entries(0, n.CommitIndex()) {
			if string(e.Data) == "doomed" {
				found = true
			}
		}
		if found {
			t.Fatalf("node %s committed the doomed entry", id)
		}
	}
}

func TestProposeOnFollowerFails(t *testing.T) {
	c := NewCluster(3, 5)
	leader := mustElect(t, c)
	for _, id := range c.Nodes() {
		if id == leader.ID() {
			continue
		}
		if _, err := c.Node(id).Propose([]byte("x")); err != ErrNotLeader {
			t.Fatalf("follower propose err = %v", err)
		}
	}
}

func TestNoLeaderWithMajorityDown(t *testing.T) {
	c := NewCluster(3, 3)
	c.Crash(c.Nodes()[0])
	c.Crash(c.Nodes()[1])
	if _, err := c.ElectLeader(200); err == nil {
		t.Fatal("leader elected without quorum")
	}
}

// TestSingleLeaderPerTermQuick: across random seeds, after any number of
// ticks, no two live nodes are leader in the same term — the Raft
// election-safety invariant.
func TestSingleLeaderPerTermQuick(t *testing.T) {
	f := func(seed int64, ticks uint8) bool {
		c := NewCluster(5, seed)
		leadersByTerm := make(map[Term]NodeID)
		for i := 0; i < int(ticks)+20; i++ {
			c.Tick()
			for _, id := range c.Nodes() {
				n := c.Node(id)
				if n.State() == Leader {
					if prev, ok := leadersByTerm[n.Term()]; ok && prev != id {
						return false
					}
					leadersByTerm[n.Term()] = id
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestLogMatchingQuick: random workloads with a mid-stream leader crash
// still leave all nodes with identical committed prefixes.
func TestLogMatchingQuick(t *testing.T) {
	f := func(seed int64, crashAt uint8) bool {
		c := NewCluster(3, seed)
		for i := 0; i < 6; i++ {
			if i == int(crashAt%6) {
				if l := c.Leader(); l != nil {
					c.Crash(l.ID())
					// Bring it back later so quorum persists.
					defer c.Restart(l.ID())
				}
			}
			// Propose may fail while a new leader emerges; retry once.
			if _, err := c.Propose([]byte(fmt.Sprintf("e%d", i)), 400); err != nil {
				if _, err := c.Propose([]byte(fmt.Sprintf("e%d", i)), 400); err != nil {
					return true // no quorum progress is acceptable; safety is what we check
				}
			}
		}
		for i := 0; i < 20; i++ {
			c.Tick()
		}
		// Committed prefixes agree.
		var ref []Entry
		var refIdx uint64
		for _, id := range c.Nodes() {
			n := c.Node(id)
			if n.CommitIndex() > refIdx {
				refIdx = n.CommitIndex()
				ref = n.Entries(0, refIdx)
			}
		}
		for _, id := range c.Nodes() {
			n := c.Node(id)
			got := n.Entries(0, n.CommitIndex())
			for j, e := range got {
				if ref[j].Term != e.Term || string(ref[j].Data) != string(e.Data) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestStateAndMsgTypeStrings(t *testing.T) {
	if Follower.String() != "follower" || Candidate.String() != "candidate" || Leader.String() != "leader" {
		t.Error("state strings wrong")
	}
	if State(9).String() != "State(9)" {
		t.Error("unknown state string wrong")
	}
	for mt, want := range map[MsgType]string{
		MsgVoteRequest: "VoteRequest", MsgVoteResponse: "VoteResponse",
		MsgAppend: "Append", MsgAppendResponse: "AppendResponse",
		MsgType(9): "MsgType(9)",
	} {
		if mt.String() != want {
			t.Errorf("%d.String() = %q", int(mt), mt.String())
		}
	}
}
