// Package raft implements the Raft consensus algorithm (Ongaro &
// Ousterhout, USENIX ATC 2014) used by the ordering service, as in
// Hyperledger Fabric 2.x where orderers run Raft to agree on the order of
// transactions before cutting blocks.
//
// The implementation is a deterministic, message-passing core: nodes make
// progress only through Tick and Step calls and emit messages and
// committed entries through Ready. Time is logical (ticks), randomness is
// seeded per node, and the transport lives outside the core — which makes
// the consensus layer fully testable without real clocks or goroutines.
package raft

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// NodeID identifies a raft node.
type NodeID string

// Term is a raft term number.
type Term uint64

// State is the role a node currently plays.
type State int

// Raft node states.
const (
	Follower State = iota + 1
	Candidate
	Leader
)

// String renders the state.
func (s State) String() string {
	switch s {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Entry is one log entry: opaque data at an index, stamped with the term
// it was proposed in.
type Entry struct {
	Term  Term
	Index uint64
	Data  []byte
}

// MsgType enumerates raft RPCs (as messages).
type MsgType int

// Message types exchanged between nodes.
const (
	MsgVoteRequest MsgType = iota + 1
	MsgVoteResponse
	MsgAppend
	MsgAppendResponse
	// MsgSnapshot tells a follower whose log is behind the leader's
	// compaction point to fast-forward to the snapshot index.
	MsgSnapshot
)

// String renders the message type.
func (t MsgType) String() string {
	switch t {
	case MsgVoteRequest:
		return "VoteRequest"
	case MsgVoteResponse:
		return "VoteResponse"
	case MsgAppend:
		return "Append"
	case MsgAppendResponse:
		return "AppendResponse"
	case MsgSnapshot:
		return "Snapshot"
	default:
		return fmt.Sprintf("MsgType(%d)", int(t))
	}
}

// Message is a raft RPC or its response.
type Message struct {
	Type MsgType
	From NodeID
	To   NodeID
	Term Term

	// Vote request fields.
	LastLogIndex uint64
	LastLogTerm  Term
	// Vote response field.
	Granted bool

	// Append fields.
	PrevLogIndex uint64
	PrevLogTerm  Term
	Entries      []Entry
	LeaderCommit uint64
	// Append response fields.
	Success    bool
	MatchIndex uint64

	// Snapshot fields: the compaction point the follower must adopt.
	// No state payload travels with it — the replicated state (the
	// ordered transaction stream) is recoverable from the ordering
	// service's retained blocks, so a snapshot only moves the log
	// horizon.
	SnapshotIndex uint64
	SnapshotTerm  Term
}

// ErrNotLeader is returned by Propose on a non-leader node.
var ErrNotLeader = errors.New("raft: not leader")

// Config parameterizes a node.
type Config struct {
	// ID of this node.
	ID NodeID
	// Peers is the full cluster membership, including this node.
	Peers []NodeID
	// ElectionTimeoutTicks is the base election timeout; each node
	// randomizes within [timeout, 2*timeout).
	ElectionTimeoutTicks int
	// HeartbeatTicks is the leader's heartbeat interval.
	HeartbeatTicks int
	// Seed drives the node's election jitter; nodes seeded differently
	// avoid split votes deterministically in tests.
	Seed int64
}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.ElectionTimeoutTicks == 0 {
		cfg.ElectionTimeoutTicks = 10
	}
	if cfg.HeartbeatTicks == 0 {
		cfg.HeartbeatTicks = 1
	}
	return cfg
}

// Node is a single raft participant. It is not safe for concurrent use;
// callers serialize access (the Cluster harness and the orderer both do).
type Node struct {
	cfg   Config
	state State
	term  Term
	// votedFor is the candidate granted a vote in the current term.
	votedFor NodeID
	leader   NodeID

	// log[0] is the snapshot sentinel: its Index/Term mark the last
	// compacted entry (0/0 before any compaction), and log[i] holds the
	// entry at index log[0].Index+i.
	log         []Entry
	commitIndex uint64
	applied     uint64

	// Leader bookkeeping.
	nextIndex  map[NodeID]uint64
	matchIndex map[NodeID]uint64
	votes      map[NodeID]bool

	electionElapsed   int
	heartbeatElapsed  int
	randomizedTimeout int
	rng               *rand.Rand

	outbox []Message
}

// NewNode creates a follower at term 0 with an empty log.
func NewNode(cfg Config) *Node {
	c := cfg.withDefaults()
	n := &Node{
		cfg:   c,
		state: Follower,
		log:   []Entry{{}},
		rng:   rand.New(rand.NewSource(c.Seed ^ int64(len(c.ID)))),
	}
	n.resetElectionTimeout()
	return n
}

// ID returns the node's identity.
func (n *Node) ID() NodeID { return n.cfg.ID }

// State returns the node's current role.
func (n *Node) State() State { return n.state }

// Term returns the node's current term.
func (n *Node) Term() Term { return n.term }

// Leader returns the node this node believes is leader ("" if unknown).
func (n *Node) Leader() NodeID { return n.leader }

// CommitIndex returns the highest committed log index.
func (n *Node) CommitIndex() uint64 { return n.commitIndex }

// LastIndex returns the index of the last log entry.
func (n *Node) LastIndex() uint64 { return n.log[len(n.log)-1].Index }

// FirstIndex returns the snapshot sentinel index: entries at or below it
// have been compacted away.
func (n *Node) FirstIndex() uint64 { return n.log[0].Index }

// termAt returns the term of the entry at index i, with ok=false when i
// is outside the retained log (compacted or beyond the end).
func (n *Node) termAt(i uint64) (Term, bool) {
	fi := n.FirstIndex()
	if i < fi || i > n.LastIndex() {
		return 0, false
	}
	return n.log[i-fi].Term, true
}

// entryAt returns the entry at index i; the caller guarantees bounds.
func (n *Node) entryAt(i uint64) Entry { return n.log[i-n.FirstIndex()] }

// Compact discards log entries up to and including upTo, which must not
// exceed the applied index (entries must have been consumed through
// Ready before they can be dropped). The sentinel keeps the compaction
// point's term so consistency checks still work across the boundary.
func (n *Node) Compact(upTo uint64) error {
	if upTo <= n.FirstIndex() {
		return nil
	}
	if upTo > n.applied {
		return fmt.Errorf("raft: compact %d beyond applied %d", upTo, n.applied)
	}
	term, ok := n.termAt(upTo)
	if !ok {
		return fmt.Errorf("raft: compact %d outside log", upTo)
	}
	tail := n.log[upTo-n.FirstIndex()+1:]
	newLog := make([]Entry, 0, len(tail)+1)
	newLog = append(newLog, Entry{Term: term, Index: upTo})
	newLog = append(newLog, tail...)
	n.log = newLog
	return nil
}

// Entries returns a copy of the log entries in (lo, hi] for tests and
// invariant checks.
func (n *Node) Entries(lo, hi uint64) []Entry {
	var out []Entry
	for _, e := range n.log[1:] {
		if e.Index > lo && e.Index <= hi {
			out = append(out, e)
		}
	}
	return out
}

func (n *Node) resetElectionTimeout() {
	base := n.cfg.ElectionTimeoutTicks
	n.randomizedTimeout = base + n.rng.Intn(base)
	n.electionElapsed = 0
}

func (n *Node) quorum() int { return len(n.cfg.Peers)/2 + 1 }

func (n *Node) send(m Message) {
	m.From = n.cfg.ID
	m.Term = n.term
	n.outbox = append(n.outbox, m)
}

// Tick advances logical time by one unit: followers and candidates count
// toward election timeouts, leaders toward heartbeats.
func (n *Node) Tick() {
	switch n.state {
	case Leader:
		n.heartbeatElapsed++
		if n.heartbeatElapsed >= n.cfg.HeartbeatTicks {
			n.heartbeatElapsed = 0
			n.broadcastAppend()
		}
	default:
		n.electionElapsed++
		if n.electionElapsed >= n.randomizedTimeout {
			n.startElection()
		}
	}
}

func (n *Node) startElection() {
	n.state = Candidate
	n.term++
	n.votedFor = n.cfg.ID
	n.leader = ""
	n.votes = map[NodeID]bool{n.cfg.ID: true}
	n.resetElectionTimeout()
	last := n.log[len(n.log)-1]
	for _, p := range n.cfg.Peers {
		if p == n.cfg.ID {
			continue
		}
		n.send(Message{
			Type:         MsgVoteRequest,
			To:           p,
			LastLogIndex: last.Index,
			LastLogTerm:  last.Term,
		})
	}
	if len(n.votes) >= n.quorum() { // single-node cluster
		n.becomeLeader()
	}
}

func (n *Node) becomeFollower(term Term, leader NodeID) {
	n.state = Follower
	if term > n.term {
		n.term = term
		n.votedFor = ""
	}
	n.leader = leader
	n.resetElectionTimeout()
}

func (n *Node) becomeLeader() {
	n.state = Leader
	n.leader = n.cfg.ID
	n.heartbeatElapsed = 0
	n.nextIndex = make(map[NodeID]uint64, len(n.cfg.Peers))
	n.matchIndex = make(map[NodeID]uint64, len(n.cfg.Peers))
	for _, p := range n.cfg.Peers {
		n.nextIndex[p] = n.LastIndex() + 1
		n.matchIndex[p] = 0
	}
	n.matchIndex[n.cfg.ID] = n.LastIndex()
	// Raft leaders commit a no-op entry from their own term to learn
	// the commit point of prior terms (§5.4.2 of the paper); the
	// orderer skips empty entries when cutting blocks.
	n.appendLocal(nil)
	n.broadcastAppend()
}

func (n *Node) appendLocal(data []byte) Entry {
	e := Entry{Term: n.term, Index: n.LastIndex() + 1, Data: data}
	n.log = append(n.log, e)
	n.matchIndex[n.cfg.ID] = e.Index
	return e
}

// Propose appends data to the replicated log. Only the leader accepts
// proposals; followers return ErrNotLeader and the caller redirects.
func (n *Node) Propose(data []byte) (uint64, error) {
	if n.state != Leader {
		return 0, ErrNotLeader
	}
	e := n.appendLocal(data)
	n.broadcastAppend()
	n.maybeAdvanceCommit()
	return e.Index, nil
}

// ProposeBatch appends a batch of entries to the replicated log with a
// single broadcast: the multi-entry append path of the pipelined
// ordering service. N batched proposals replicate in one AppendEntries
// exchange instead of N, so a full consensus round is paid once per
// batch. Returns the index range [first, last] of the appended entries.
func (n *Node) ProposeBatch(datas [][]byte) (first, last uint64, err error) {
	if n.state != Leader {
		return 0, 0, ErrNotLeader
	}
	if len(datas) == 0 {
		return 0, 0, nil
	}
	for i, data := range datas {
		e := n.appendLocal(data)
		if i == 0 {
			first = e.Index
		}
		last = e.Index
	}
	n.broadcastAppend()
	n.maybeAdvanceCommit()
	return first, last, nil
}

func (n *Node) broadcastAppend() {
	for _, p := range n.cfg.Peers {
		if p == n.cfg.ID {
			continue
		}
		n.sendAppend(p)
	}
}

func (n *Node) sendAppend(to NodeID) {
	next := n.nextIndex[to]
	if next == 0 {
		next = n.FirstIndex() + 1
	}
	if next <= n.FirstIndex() {
		// The follower needs entries we compacted away: send the
		// snapshot horizon instead.
		n.send(Message{
			Type:          MsgSnapshot,
			To:            to,
			SnapshotIndex: n.FirstIndex(),
			SnapshotTerm:  n.log[0].Term,
		})
		return
	}
	prevIndex := next - 1
	if prevIndex > n.LastIndex() {
		prevIndex = n.LastIndex()
		next = prevIndex + 1
	}
	prevTerm := n.entryAt(prevIndex).Term
	var entries []Entry
	for i := next; i <= n.LastIndex(); i++ {
		entries = append(entries, n.entryAt(i))
	}
	n.send(Message{
		Type:         MsgAppend,
		To:           to,
		PrevLogIndex: prevIndex,
		PrevLogTerm:  prevTerm,
		Entries:      entries,
		LeaderCommit: n.commitIndex,
	})
}

// Step processes one incoming message.
func (n *Node) Step(m Message) {
	if m.Term > n.term {
		leader := NodeID("")
		if m.Type == MsgAppend {
			leader = m.From
		}
		n.becomeFollower(m.Term, leader)
	}
	switch m.Type {
	case MsgVoteRequest:
		n.stepVoteRequest(m)
	case MsgVoteResponse:
		n.stepVoteResponse(m)
	case MsgAppend:
		n.stepAppend(m)
	case MsgAppendResponse:
		n.stepAppendResponse(m)
	case MsgSnapshot:
		n.stepSnapshot(m)
	}
}

func (n *Node) stepVoteRequest(m Message) {
	granted := false
	if m.Term >= n.term && (n.votedFor == "" || n.votedFor == m.From) {
		// Election restriction (§5.4.1): candidate's log must be at
		// least as up-to-date as ours.
		last := n.log[len(n.log)-1]
		upToDate := m.LastLogTerm > last.Term ||
			(m.LastLogTerm == last.Term && m.LastLogIndex >= last.Index)
		if upToDate {
			granted = true
			n.votedFor = m.From
			n.resetElectionTimeout()
		}
	}
	n.send(Message{Type: MsgVoteResponse, To: m.From, Granted: granted})
}

func (n *Node) stepVoteResponse(m Message) {
	if n.state != Candidate || m.Term < n.term {
		return
	}
	if m.Granted {
		n.votes[m.From] = true
		if len(n.votes) >= n.quorum() {
			n.becomeLeader()
		}
	}
}

func (n *Node) stepAppend(m Message) {
	if m.Term < n.term {
		n.send(Message{Type: MsgAppendResponse, To: m.From, Success: false})
		return
	}
	n.becomeFollower(m.Term, m.From)

	// A prefix already covered by our snapshot is implicitly matched;
	// drop the overlapping entries and move the consistency point up.
	if m.PrevLogIndex < n.FirstIndex() {
		covered := n.FirstIndex() - m.PrevLogIndex
		if uint64(len(m.Entries)) <= covered {
			n.send(Message{Type: MsgAppendResponse, To: m.From, Success: true, MatchIndex: n.FirstIndex()})
			return
		}
		m.Entries = m.Entries[covered:]
		m.PrevLogIndex = n.FirstIndex()
		m.PrevLogTerm = n.log[0].Term
	}
	// Consistency check: our log must contain PrevLogIndex at
	// PrevLogTerm.
	prevTerm, ok := n.termAt(m.PrevLogIndex)
	if !ok || prevTerm != m.PrevLogTerm {
		n.send(Message{Type: MsgAppendResponse, To: m.From, Success: false, MatchIndex: 0})
		return
	}
	// Append entries, truncating any conflicting suffix.
	for _, e := range m.Entries {
		if e.Index <= n.LastIndex() {
			if term, ok := n.termAt(e.Index); ok && term == e.Term {
				continue
			}
			n.log = n.log[:e.Index-n.FirstIndex()]
		}
		n.log = append(n.log, e)
	}
	match := m.PrevLogIndex + uint64(len(m.Entries))
	if m.LeaderCommit > n.commitIndex {
		n.commitIndex = min(m.LeaderCommit, n.LastIndex())
	}
	n.send(Message{Type: MsgAppendResponse, To: m.From, Success: true, MatchIndex: match})
}

func (n *Node) stepAppendResponse(m Message) {
	if n.state != Leader || m.Term < n.term {
		return
	}
	if !m.Success {
		// Back off nextIndex and retry.
		if n.nextIndex[m.From] > 1 {
			n.nextIndex[m.From]--
		}
		n.sendAppend(m.From)
		return
	}
	if m.MatchIndex > n.matchIndex[m.From] {
		n.matchIndex[m.From] = m.MatchIndex
	}
	n.nextIndex[m.From] = n.matchIndex[m.From] + 1
	n.maybeAdvanceCommit()
}

// maybeAdvanceCommit advances commitIndex to the highest index replicated
// on a quorum whose entry is from the current term (§5.4.2).
func (n *Node) maybeAdvanceCommit() {
	matches := make([]uint64, 0, len(n.cfg.Peers))
	for _, p := range n.cfg.Peers {
		matches = append(matches, n.matchIndex[p])
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i] > matches[j] })
	candidate := matches[n.quorum()-1]
	if candidate <= n.commitIndex {
		return
	}
	if term, ok := n.termAt(candidate); ok && term == n.term {
		n.commitIndex = candidate
	}
}

// stepSnapshot fast-forwards a lagging follower to the leader's
// compaction point. Entries at or below the snapshot index are treated
// as committed and applied (the application recovers the corresponding
// state out of band — the orderer from its retained blocks).
func (n *Node) stepSnapshot(m Message) {
	if m.Term < n.term {
		n.send(Message{Type: MsgAppendResponse, To: m.From, Success: false})
		return
	}
	n.becomeFollower(m.Term, m.From)
	if m.SnapshotIndex <= n.commitIndex {
		// Nothing to install; tell the leader where we are.
		n.send(Message{Type: MsgAppendResponse, To: m.From, Success: true, MatchIndex: n.commitIndex})
		return
	}
	n.log = []Entry{{Term: m.SnapshotTerm, Index: m.SnapshotIndex}}
	n.commitIndex = m.SnapshotIndex
	n.applied = m.SnapshotIndex
	n.send(Message{Type: MsgAppendResponse, To: m.From, Success: true, MatchIndex: m.SnapshotIndex})
}

// Ready drains the node's pending outbound messages and newly committed
// entries. The caller delivers the messages and applies the entries.
func (n *Node) Ready() (msgs []Message, committed []Entry) {
	msgs = n.outbox
	n.outbox = nil
	for n.applied < n.commitIndex {
		n.applied++
		committed = append(committed, n.entryAt(n.applied))
	}
	return msgs, committed
}
