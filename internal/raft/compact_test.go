package raft

import (
	"fmt"
	"testing"
)

func TestCompactBasics(t *testing.T) {
	c := NewCluster(3, 21)
	for i := 0; i < 6; i++ {
		if _, err := c.Propose([]byte(fmt.Sprintf("e%d", i)), 300); err != nil {
			t.Fatal(err)
		}
	}
	leader := mustElect(t, c)
	if err := leader.Compact(leader.applied); err != nil {
		t.Fatal(err)
	}
	if leader.FirstIndex() != leader.applied {
		t.Fatalf("first index = %d, want %d", leader.FirstIndex(), leader.applied)
	}
	// Compacting beyond applied is refused.
	if err := leader.Compact(leader.LastIndex() + 5); err == nil {
		t.Fatal("compaction beyond applied accepted")
	}
	// Re-compacting below the horizon is a no-op.
	if err := leader.Compact(1); err != nil {
		t.Fatal(err)
	}
	// The cluster keeps committing after compaction.
	if _, err := c.Propose([]byte("after"), 300); err != nil {
		t.Fatalf("propose after compaction: %v", err)
	}
	if got := c.Committed(); string(got[len(got)-1].Data) != "after" {
		t.Fatal("post-compaction entry lost")
	}
}

// TestSnapshotCatchUp crashes a follower, commits and compacts past its
// log, and checks the restarted follower is fast-forwarded via snapshot
// and continues replicating.
func TestSnapshotCatchUp(t *testing.T) {
	c := NewCluster(3, 23)
	leader := mustElect(t, c)

	// Crash a follower.
	var crashed NodeID
	for _, id := range c.Nodes() {
		if id != leader.ID() {
			crashed = id
			break
		}
	}
	c.Crash(crashed)

	for i := 0; i < 5; i++ {
		if _, err := c.Propose([]byte(fmt.Sprintf("e%d", i)), 300); err != nil {
			t.Fatal(err)
		}
	}
	// Compact live nodes beyond the crashed follower's log.
	c.Compact(c.Node(leader.ID()).applied)
	if leader.FirstIndex() == 0 {
		t.Fatal("leader did not compact")
	}

	// Restart: the follower is behind the compaction horizon and must
	// be served a snapshot.
	c.Restart(crashed)
	for i := 0; i < 50; i++ {
		c.Tick()
	}
	follower := c.Node(crashed)
	if follower.CommitIndex() < leader.FirstIndex() {
		t.Fatalf("follower commit %d below snapshot %d", follower.CommitIndex(), leader.FirstIndex())
	}

	// New entries reach the snapshotted follower.
	if _, err := c.Propose([]byte("fresh"), 300); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		c.Tick()
	}
	found := false
	for _, e := range follower.Entries(0, follower.CommitIndex()) {
		if string(e.Data) == "fresh" {
			found = true
		}
	}
	if !found {
		t.Fatal("post-snapshot entry did not reach the follower")
	}
}

// TestCompactionPreservesSafety: random compactions during a workload
// never break the committed-prefix agreement.
func TestCompactionPreservesSafety(t *testing.T) {
	c := NewCluster(3, 29)
	for i := 0; i < 10; i++ {
		if _, err := c.Propose([]byte(fmt.Sprintf("e%d", i)), 300); err != nil {
			t.Fatal(err)
		}
		if i%3 == 2 {
			c.Compact(uint64(i))
		}
	}
	got := c.Committed()
	if len(got) != 10 {
		t.Fatalf("committed %d entries, want 10", len(got))
	}
	for i, e := range got {
		if string(e.Data) != fmt.Sprintf("e%d", i) {
			t.Fatalf("entry %d = %q", i, e.Data)
		}
	}
}
