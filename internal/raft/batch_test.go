package raft

import (
	"fmt"
	"testing"
)

func TestProposeBatchCommitsAllInOrder(t *testing.T) {
	c := NewCluster(3, 11)
	datas := make([][]byte, 20)
	for i := range datas {
		datas[i] = []byte(fmt.Sprintf("batch%d", i))
	}
	first, last, err := c.ProposeBatch(datas, 200)
	if err != nil {
		t.Fatalf("propose batch: %v", err)
	}
	if last-first+1 != uint64(len(datas)) {
		t.Fatalf("index range [%d,%d] for %d entries", first, last, len(datas))
	}
	committed := c.Committed()
	if len(committed) != len(datas) {
		t.Fatalf("committed %d entries, want %d", len(committed), len(datas))
	}
	for i, e := range committed {
		if string(e.Data) != fmt.Sprintf("batch%d", i) {
			t.Fatalf("entry %d = %q", i, e.Data)
		}
	}
}

func TestProposeBatchInterleavesWithSingleProposals(t *testing.T) {
	c := NewCluster(3, 12)
	if _, err := c.Propose([]byte("pre"), 200); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.ProposeBatch([][]byte{[]byte("a"), []byte("b")}, 200); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Propose([]byte("post"), 200); err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, e := range c.Committed() {
		got = append(got, string(e.Data))
	}
	want := []string{"pre", "a", "b", "post"}
	if len(got) != len(want) {
		t.Fatalf("committed %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("committed %v, want %v", got, want)
		}
	}
}

func TestProposeBatchEmptyIsNoOp(t *testing.T) {
	c := NewCluster(3, 13)
	first, last, err := c.ProposeBatch(nil, 200)
	if err != nil || first != 0 || last != 0 {
		t.Fatalf("empty batch: first=%d last=%d err=%v", first, last, err)
	}
	if len(c.Committed()) != 0 {
		t.Fatal("empty batch committed entries")
	}
}

func TestProposeBatchOnFollowerFails(t *testing.T) {
	c := NewCluster(3, 14)
	leader, err := c.ElectLeader(200)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range c.Nodes() {
		if id == leader.ID() {
			continue
		}
		if _, _, err := c.Node(id).ProposeBatch([][]byte{[]byte("x")}); err != ErrNotLeader {
			t.Fatalf("follower batch propose: %v", err)
		}
	}
}

// TestProposeBatchSurvivesLeaderCrash: a batch committed before the crash
// survives re-election, and batches keep committing through the new
// leader.
func TestProposeBatchSurvivesLeaderCrash(t *testing.T) {
	c := NewCluster(3, 15)
	if _, _, err := c.ProposeBatch([][]byte{[]byte("a"), []byte("b")}, 200); err != nil {
		t.Fatal(err)
	}
	leader, err := c.ElectLeader(200)
	if err != nil {
		t.Fatal(err)
	}
	c.Crash(leader.ID())
	if _, _, err := c.ProposeBatch([][]byte{[]byte("c"), []byte("d")}, 500); err != nil {
		t.Fatalf("batch after leader crash: %v", err)
	}
	var got []string
	for _, e := range c.Committed() {
		got = append(got, string(e.Data))
	}
	want := []string{"a", "b", "c", "d"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("committed %v, want %v", got, want)
		}
	}
}

// TestProposeBatchMinorityPartitionNeverCommits: a batch appended by a
// leader cut off from the majority must be overwritten after the heal —
// batching does not weaken the commit quorum.
func TestProposeBatchMinorityPartitionNeverCommits(t *testing.T) {
	c := NewCluster(5, 16)
	leader, err := c.ElectLeader(200)
	if err != nil {
		t.Fatal(err)
	}
	var minority, majority []NodeID
	minority = append(minority, leader.ID())
	for _, id := range c.Nodes() {
		if id == leader.ID() {
			continue
		}
		if len(minority) < 2 {
			minority = append(minority, id)
		} else {
			majority = append(majority, id)
		}
	}
	c.Partition(minority, majority)

	// The isolated leader appends the batch locally; it must never reach
	// a quorum.
	if _, _, err := leader.ProposeBatch([][]byte{[]byte("doomed1"), []byte("doomed2")}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c.Tick()
	}
	c.Heal()
	for i := 0; i < 300; i++ {
		c.Tick()
	}
	// Drive a fresh committed entry through the healed cluster, then
	// check no node retains the doomed batch in its committed prefix.
	if _, err := c.Propose([]byte("after-heal"), 500); err != nil {
		t.Fatalf("propose after heal: %v", err)
	}
	for _, id := range c.Nodes() {
		n := c.Node(id)
		for _, e := range n.Entries(0, n.CommitIndex()) {
			if string(e.Data) == "doomed1" || string(e.Data) == "doomed2" {
				t.Fatalf("node %s committed a doomed batch entry", id)
			}
		}
	}
}
