package dedup

import (
	"fmt"
	"sync"
	"testing"
)

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 64: 64, 65: 128, 1000: 1024}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Errorf("nextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestPowerOfTwoSizing(t *testing.T) {
	c := New(1000)
	if got := c.Capacity(); got != 1024 {
		t.Fatalf("Capacity() = %d, want 1024", got)
	}
	if s := c.Shards(); s&(s-1) != 0 {
		t.Fatalf("Shards() = %d, not a power of two", s)
	}
	// Tiny capacities collapse the stripe count rather than ending up
	// with zero-size shards.
	small := New(4)
	if small.Capacity() != 4 {
		t.Fatalf("small Capacity() = %d, want 4", small.Capacity())
	}
	if small.Shards() > 4 {
		t.Fatalf("small Shards() = %d, want <= 4", small.Shards())
	}
	def := New(0)
	if def.Capacity() != DefaultCapacity {
		t.Fatalf("default Capacity() = %d, want %d", def.Capacity(), DefaultCapacity)
	}
}

func TestSeenAddCounters(t *testing.T) {
	c := New(128)
	if c.Seen("tx-a") {
		t.Fatal("Seen on empty cache returned true")
	}
	if !c.Add("tx-a") {
		t.Fatal("first Add returned false")
	}
	if !c.Seen("tx-a") {
		t.Fatal("Seen after Add returned false")
	}
	if c.Add("tx-a") {
		t.Fatal("second Add returned true")
	}
	st := c.Stats()
	// 1 miss (first Seen) + 2 hits (second Seen, duplicate Add).
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("Stats = %+v, want Hits=2 Misses=1", st)
	}
	if st.Size != 1 {
		t.Fatalf("Size = %d, want 1", st.Size)
	}
}

func TestEvictionAtCapacity(t *testing.T) {
	// Single-shard cache so FIFO order is fully deterministic.
	c := New(4)
	if c.Shards() != 4 && c.Shards() != 1 {
		t.Logf("shards=%d cap=%d", c.Shards(), c.Capacity())
	}
	// Overfill well past capacity: residency must never exceed capacity
	// and evictions must account for the overflow exactly.
	const n = 64
	for i := 0; i < n; i++ {
		c.Add(fmt.Sprintf("tx-%03d", i))
	}
	st := c.Stats()
	if st.Size > c.Capacity() {
		t.Fatalf("Size %d exceeds capacity %d", st.Size, c.Capacity())
	}
	if got, want := int(st.Evictions), n-st.Size; got != want {
		t.Fatalf("Evictions = %d, want %d (n=%d resident=%d)", got, want, n, st.Size)
	}
	if st.Size != c.Len() {
		t.Fatalf("Stats.Size %d != Len() %d", st.Size, c.Len())
	}
}

func TestFIFOEvictionOrder(t *testing.T) {
	// Capacity 1 forces a single one-slot shard: each Add must evict the
	// previous resident.
	c := New(1)
	c.Add("first")
	c.Add("second")
	if c.Seen("first") {
		t.Fatal("evicted ID still resident")
	}
	if !c.Seen("second") {
		t.Fatal("newest ID not resident")
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("Evictions = %d, want 1", ev)
	}
}

func TestStripedConcurrency(t *testing.T) {
	c := New(1 << 12)
	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				id := fmt.Sprintf("tx-%d-%d", g, i%500)
				c.Seen(id)
				c.Add(id)
				c.Seen(id)
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("expected both hits and misses, got %+v", st)
	}
	if st.Size > c.Capacity() {
		t.Fatalf("Size %d exceeds capacity %d", st.Size, c.Capacity())
	}
	// Every ID added this round and not evicted must be findable.
	if !c.Seen(fmt.Sprintf("tx-%d-%d", goroutines-1, 499)) && st.Evictions == 0 {
		t.Fatal("recently added ID missing without any eviction")
	}
}

func BenchmarkCacheSeen(b *testing.B) {
	c := New(1 << 16)
	ids := make([]string, 1024)
	for i := range ids {
		ids[i] = fmt.Sprintf("bench-tx-%04d", i)
		c.Add(ids[i])
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Seen(ids[i&1023])
			i++
		}
	})
}
