// Package dedup implements the sharded duplicate-TxID cache that fronts
// block validation: a bounded, striped set of recently committed
// transaction IDs that lets the validator reject replayed submissions
// before the expensive endorsement-signature verification, without a
// global lock.
//
// Design (after teranode's txmetacache improved-cache): the capacity is
// rounded up to a power of two and split across a power-of-two number of
// striped buckets, so the shard index is a mask over the key hash and
// two lookups for different transactions almost never contend. Each
// shard is an open map fronted by a FIFO ring of the same capacity: at
// capacity the oldest resident ID is evicted, which is safe here because
// the cache is an accelerator, not the authority — a miss falls through
// to the peer's block-store index, so eviction can cause a slow check
// but never a wrong verdict.
package dedup

import (
	"sync"
	"sync/atomic"
)

// DefaultCapacity is the cache capacity when the configuration does not
// set one: 64Ki transaction IDs (~4 MiB of IDs at 64-byte TxIDs).
const DefaultCapacity = 1 << 16

// defaultShards is the stripe count (power of two). 64 stripes keep
// contention negligible at validation-worker counts far beyond any
// machine this runs on.
const defaultShards = 64

// Stats is a consistent snapshot of the cache's counters.
type Stats struct {
	// Hits counts lookups that found the ID resident (duplicates caught
	// before signature verification).
	Hits uint64
	// Misses counts lookups that fell through to the authoritative
	// block-store check.
	Misses uint64
	// Evictions counts resident IDs displaced at capacity.
	Evictions uint64
	// Size is the number of currently resident IDs.
	Size int
}

// Cache is a sharded duplicate-TxID set. All methods are safe for
// concurrent use; distinct transactions map to distinct shards with high
// probability, so there is no global lock anywhere.
type Cache struct {
	shards []shard
	mask   uint64

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// shard is one stripe: a membership map plus a FIFO ring recording
// insertion order for eviction at capacity.
type shard struct {
	mu   sync.Mutex
	set  map[string]struct{}
	ring []string
	head int // next ring slot to write (and evict from, once full)
	full bool
}

// nextPow2 rounds n up to the next power of two (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// New creates a cache holding at least `capacity` transaction IDs,
// rounded up to a power of two and split evenly across the stripes.
// capacity <= 0 selects DefaultCapacity.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	capacity = nextPow2(capacity)
	shards := defaultShards
	if shards > capacity {
		shards = capacity
	}
	perShard := capacity / shards
	c := &Cache{shards: make([]shard, shards), mask: uint64(shards - 1)}
	for i := range c.shards {
		c.shards[i].set = make(map[string]struct{}, perShard)
		c.shards[i].ring = make([]string, perShard)
	}
	return c
}

// fnv1a hashes the key inline (FNV-1a, 64-bit) — no allocation, no
// interface dispatch on the hot path.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

func (c *Cache) shardFor(txID string) *shard {
	return &c.shards[fnv1a(txID)&c.mask]
}

// Seen reports whether txID is resident, counting the lookup as a hit or
// miss. A miss is not authoritative — the caller falls through to the
// block-store index — but a hit is definitive for any ID added only
// after commit.
func (c *Cache) Seen(txID string) bool {
	s := c.shardFor(txID)
	s.mu.Lock()
	_, ok := s.set[txID]
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return ok
}

// Add inserts txID, evicting the shard's oldest resident at capacity.
// It returns false when the ID was already resident (a duplicate),
// counting that as a hit; fresh inserts count neither hit nor miss.
func (c *Cache) Add(txID string) bool {
	s := c.shardFor(txID)
	s.mu.Lock()
	if _, ok := s.set[txID]; ok {
		s.mu.Unlock()
		c.hits.Add(1)
		return false
	}
	evicted := false
	if s.full {
		delete(s.set, s.ring[s.head])
		evicted = true
	}
	s.ring[s.head] = txID
	s.head++
	if s.head == len(s.ring) {
		s.head = 0
		s.full = true
	}
	s.set[txID] = struct{}{}
	s.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
	}
	return true
}

// Len returns the number of resident IDs.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.set)
		s.mu.Unlock()
	}
	return n
}

// Capacity returns the total capacity (power of two) across all shards.
func (c *Cache) Capacity() int { return len(c.shards) * len(c.shards[0].ring) }

// Shards returns the stripe count (power of two).
func (c *Cache) Shards() int { return len(c.shards) }

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Size:      c.Len(),
	}
}
