// Endorsement assembly: collecting proposal responses, checking their
// consistency, verifying Feature 2 hashed-payload signatures and building
// the transaction (paper §II-B and Fig. 4 steps 6–7). This is the
// canonical client-side implementation, written against service.Endorser
// so the endorsers may live in-process or behind the wire protocol.
package gateway

import (
	"bytes"
	"context"
	"errors"
	"fmt"

	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/service"
)

// Errors surfaced by the gateway's transaction flow.
var (
	// ErrNoEndorsers: the call resolved to an empty endorsement set.
	ErrNoEndorsers = errors.New("gateway: no endorsers specified")
	// ErrEndorsementMismatch: endorsers returned different results, so
	// no transaction can be assembled.
	ErrEndorsementMismatch = errors.New("gateway: endorsers returned inconsistent results")
	// ErrBadEndorserSignature: a Feature 2 signature over PR_Hash did
	// not verify.
	ErrBadEndorserSignature = errors.New("gateway: endorser signature over hashed payload invalid")
	// ErrCommitStatusUnavailable: the commit-status event did not arrive
	// before the context/timeout expired, or the deliver stream ended.
	ErrCommitStatusUnavailable = errors.New("gateway: commit status not received")
)

// NewProposal builds a proposal signed-over by the gateway's identity.
// Exposed for harnesses that interpose between endorsement and ordering.
func (g *Gateway) NewProposal(
	chaincodeName, function string,
	args []string,
	transient map[string][]byte,
) (*ledger.Proposal, error) {
	return g.newProposal("", chaincodeName, function, args, transient)
}

func (g *Gateway) newProposal(
	channel, chaincodeName, function string,
	args []string,
	transient map[string][]byte,
) (*ledger.Proposal, error) {
	nonce, err := ledger.NewNonce()
	if err != nil {
		return nil, err
	}
	creator := g.id.Cert.Bytes()
	return &ledger.Proposal{
		TxID:      ledger.NewTxID(nonce, creator),
		ChannelID: channel,
		Chaincode: chaincodeName,
		Function:  function,
		Args:      args,
		Creator:   creator,
		Nonce:     nonce,
		Transient: transient,
	}, nil
}

// EndorseProposal collects endorsements for a proposal and assembles the
// transaction, returning it together with the plaintext payload. The
// endorsers are called concurrently; the context is honored during the
// calls — cancellation (or the first endorser error) releases the caller
// immediately rather than at the next loop iteration. The assembled
// transaction is deterministic: responses are ordered by endorser index,
// never by arrival.
func (g *Gateway) EndorseProposal(
	ctx context.Context,
	prop *ledger.Proposal,
	endorsers []service.Endorser,
) (*ledger.Transaction, []byte, error) {
	if len(endorsers) == 0 {
		return nil, nil, ErrNoEndorsers
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	responses, err := g.fanOutProposal(ctx, prop, endorsers)
	if err != nil {
		return nil, nil, err
	}

	// Consistency check: all endorsers must have produced the same
	// signed payload bytes (results + response).
	first := responses[0]
	for _, r := range responses[1:] {
		if !bytes.Equal(r.Payload, first.Payload) {
			return nil, nil, fmt.Errorf("%w: proposal %s", ErrEndorsementMismatch, prop.TxID)
		}
	}

	payload := first.Response.Payload
	if g.security().HashedPayloadEndorsement {
		plain, err := g.verifyHashedEndorsements(responses)
		if err != nil {
			return nil, nil, err
		}
		payload = plain
	}

	tx := &ledger.Transaction{
		TxID:            prop.TxID,
		ChannelID:       prop.ChannelID,
		Creator:         prop.Creator,
		Proposal:        prop,
		ResponsePayload: first.Payload,
	}
	for _, r := range responses {
		tx.Endorsements = append(tx.Endorsements, r.Endorsement)
	}
	return tx, payload, nil
}

// fanOutProposal sends the proposal to every endorser concurrently and
// returns the responses ordered by endorser index. The first endorser
// failure cancels the remaining waits, and a context cancellation
// releases the caller mid-call. An in-process Endorse is synchronous, so
// an abandoned call runs to completion on its own goroutine and its
// result is discarded (a wire endorser instead observes the cancelled
// fan-out context and aborts server-side); the result channel is
// buffered so those goroutines never block.
func (g *Gateway) fanOutProposal(
	ctx context.Context,
	prop *ledger.Proposal,
	endorsers []service.Endorser,
) ([]*ledger.ProposalResponse, error) {
	fanCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		idx  int
		resp *ledger.ProposalResponse
		err  error
	}
	results := make(chan outcome, len(endorsers))
	for i, e := range endorsers {
		go func(i int, e service.Endorser) {
			call := make(chan outcome, 1)
			go func() {
				resp, err := e.Endorse(fanCtx, prop)
				if err != nil {
					err = fmt.Errorf("gateway: endorsement from %s: %w", e.Name(), err)
				}
				call <- outcome{idx: i, resp: resp, err: err}
			}()
			select {
			case out := <-call:
				if out.err != nil {
					cancel()
				}
				results <- out
			case <-fanCtx.Done():
				// Prefer a result that raced the cancellation: a call
				// that did finish should report its own outcome.
				select {
				case out := <-call:
					if out.err != nil {
						cancel()
					}
					results <- out
				default:
					results <- outcome{idx: i, err: fanCtx.Err()}
				}
			}
		}(i, e)
	}
	responses := make([]*ledger.ProposalResponse, len(endorsers))
	errs := make([]error, len(endorsers))
	for range endorsers {
		out := <-results
		responses[out.idx] = out.resp
		errs[out.idx] = out.err
	}
	// A cancelled parent context wins, reported raw so callers can match
	// context.Canceled / DeadlineExceeded. Otherwise the lowest-index
	// endorser error is the deterministic result — cancellation fallout
	// on the other endorsers is a consequence, not the cause.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return responses, nil
}

// verifyHashedEndorsements implements the client side of Feature 2: for
// each endorser, recompute PR_Hash from the returned PR_Ori, check it
// matches the signed payload, and verify the signature. Returns the
// plaintext payload for the caller.
func (g *Gateway) verifyHashedEndorsements(responses []*ledger.ProposalResponse) ([]byte, error) {
	var plain []byte
	for _, r := range responses {
		if len(r.PlainPayload) == 0 {
			return nil, fmt.Errorf("%w: endorser returned no plaintext form", ErrBadEndorserSignature)
		}
		prp, err := ledger.ParseProposalResponsePayload(r.PlainPayload)
		if err != nil {
			return nil, fmt.Errorf("gateway: parse PR_Ori: %w", err)
		}
		recomputed := prp.HashedPayloadForm().Bytes()
		if !bytes.Equal(recomputed, r.Payload) {
			return nil, fmt.Errorf("%w: PR_Hash mismatch", ErrBadEndorserSignature)
		}
		cert, err := identity.ParseCertificate(r.Endorsement.Endorser)
		if err != nil {
			return nil, fmt.Errorf("gateway: parse endorser cert: %w", err)
		}
		if err := g.verifier.VerifySignature(cert, r.Payload, r.Endorsement.Signature); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadEndorserSignature, err)
		}
		plain = prp.Response.Payload
	}
	return plain, nil
}
