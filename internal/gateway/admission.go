// Gateway-side admission control: a token bucket shed submissions that
// arrive faster than the configured rate, before any endorsement work is
// done. Under overload the expensive part of a submission is the
// endorsement fan-out (per-peer simulation and ECDSA signing) followed
// by ordering — shedding ahead of both keeps the gateway's cost per
// rejected transaction near zero, which is what makes the rejection an
// effective overload signal instead of another source of load.
package gateway

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
)

// ErrOverloaded rejects a submission shed by gateway admission control.
// It is retryable: the transaction was never endorsed or ordered, so the
// client may simply resubmit after a backoff (see docs/PROTOCOL.md).
// The concrete error a shed submission carries is *OverloadedError,
// which matches this sentinel under errors.Is and adds a retry-after
// hint; the wire protocol marshals the hint so remote clients back off
// identically to in-process ones.
var ErrOverloaded = errors.New("gateway: overloaded, retry later")

// OverloadedError is the typed form of ErrOverloaded: it carries the
// token bucket's estimate of when capacity frees up, so clients need
// not guess a backoff.
type OverloadedError struct {
	// RetryAfter is how long until the bucket expects to hold a full
	// token again at the current rate (a hint, not a reservation).
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadedError) Error() string {
	return fmt.Sprintf("gateway: overloaded, retry after %v", e.RetryAfter)
}

// Is matches the ErrOverloaded sentinel, so existing
// errors.Is(err, gateway.ErrOverloaded) checks keep working.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// tokenBucket is a standard rate-limiter: `rate` tokens per second
// refill a bucket of `burst` capacity; each admitted submission takes
// one token. The refill is computed lazily from the wall clock on every
// allow call, so there is no background goroutine.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
}

// newTokenBucket builds a bucket from the SecurityConfig knobs: rate 0
// disables admission control entirely (nil bucket); burst 0 defaults to
// max(1, round(rate)) so one second of arrivals can burst through.
func newTokenBucket(rate float64, burst int) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if burst <= 0 {
		b = rate + 0.5
		if b < 1 {
			b = 1
		}
	}
	return &tokenBucket{rate: rate, burst: b, tokens: b, last: time.Now()}
}

// allow takes one token if available and reports whether the submission
// is admitted; on a shed it returns the time until the bucket refills
// to one token at the current rate — the retry-after hint.
func (tb *tokenBucket) allow() (bool, time.Duration) {
	now := time.Now()
	tb.mu.Lock()
	defer tb.mu.Unlock()
	elapsed := now.Sub(tb.last).Seconds()
	if elapsed > 0 {
		tb.tokens += elapsed * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		tb.last = now
	}
	if tb.tokens < 1 {
		wait := time.Duration((1 - tb.tokens) / tb.rate * float64(time.Second))
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		return false, wait
	}
	tb.tokens--
	return true, 0
}

// admit runs the admission check for one submission, maintaining the
// gateway_admitted/gateway_shed counters. With admission control off
// (rate 0) every submission is admitted.
func (g *Gateway) admit() error {
	g.mu.RLock()
	tb := g.admission
	g.mu.RUnlock()
	if tb != nil {
		ok, retryAfter := tb.allow()
		if !ok {
			if g.counters != nil {
				g.counters.Inc(metrics.GatewayShed)
			}
			return &OverloadedError{RetryAfter: retryAfter}
		}
	}
	if g.counters != nil {
		g.counters.Inc(metrics.GatewayAdmitted)
	}
	return nil
}
