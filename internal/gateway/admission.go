// Gateway-side admission control: a token bucket shed submissions that
// arrive faster than the configured rate, before any endorsement work is
// done. Under overload the expensive part of a submission is the
// endorsement fan-out (per-peer simulation and ECDSA signing) followed
// by ordering — shedding ahead of both keeps the gateway's cost per
// rejected transaction near zero, which is what makes the rejection an
// effective overload signal instead of another source of load.
package gateway

import (
	"errors"
	"sync"
	"time"

	"repro/internal/metrics"
)

// ErrOverloaded rejects a submission shed by gateway admission control.
// It is retryable: the transaction was never endorsed or ordered, so the
// client may simply resubmit after a backoff (see docs/PROTOCOL.md).
var ErrOverloaded = errors.New("gateway: overloaded, retry later")

// tokenBucket is a standard rate-limiter: `rate` tokens per second
// refill a bucket of `burst` capacity; each admitted submission takes
// one token. The refill is computed lazily from the wall clock on every
// allow call, so there is no background goroutine.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
}

// newTokenBucket builds a bucket from the SecurityConfig knobs: rate 0
// disables admission control entirely (nil bucket); burst 0 defaults to
// max(1, round(rate)) so one second of arrivals can burst through.
func newTokenBucket(rate float64, burst int) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if burst <= 0 {
		b = rate + 0.5
		if b < 1 {
			b = 1
		}
	}
	return &tokenBucket{rate: rate, burst: b, tokens: b, last: time.Now()}
}

// allow takes one token if available and reports whether the submission
// is admitted.
func (tb *tokenBucket) allow() bool {
	now := time.Now()
	tb.mu.Lock()
	defer tb.mu.Unlock()
	elapsed := now.Sub(tb.last).Seconds()
	if elapsed > 0 {
		tb.tokens += elapsed * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		tb.last = now
	}
	if tb.tokens < 1 {
		return false
	}
	tb.tokens--
	return true
}

// admit runs the admission check for one submission, maintaining the
// gateway_admitted/gateway_shed counters. With admission control off
// (rate 0) every submission is admitted.
func (g *Gateway) admit() error {
	g.mu.RLock()
	tb := g.admission
	g.mu.RUnlock()
	if tb != nil && !tb.allow() {
		if g.counters != nil {
			g.counters.Inc(metrics.GatewayShed)
		}
		return ErrOverloaded
	}
	if g.counters != nil {
		g.counters.Inc(metrics.GatewayAdmitted)
	}
	return nil
}
