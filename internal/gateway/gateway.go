// Package gateway implements the Fabric Gateway-style client API: a
// client connects once (Connect), navigates to a channel and contract
// (Gateway.Network, Network.Contract), and drives transactions through
// context-first calls — Contract.Evaluate for queries, Contract.Submit
// for the full endorse → order → commit-wait flow, Contract.SubmitAsync
// when the caller wants to overlap work with the commit wait.
//
// Unlike the deprecated client.Client, Submit does not return at ordering
// time: it blocks (honoring the context's deadline) until the
// transaction's final validation code arrives over the commit peer's
// delivery service (internal/deliver) — the same push-based commit
// notification real Fabric clients rely on. There is no peer-state
// polling anywhere in this path.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/deliver"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/orderer"
	"repro/internal/peer"
)

// DefaultCommitTimeout bounds the commit wait when the caller's context
// carries no deadline.
const DefaultCommitTimeout = 30 * time.Second

// Options wires a Gateway beyond its identity and peers.
type Options struct {
	// Verifier checks endorsement signatures under defense Feature 2.
	Verifier *identity.Verifier
	// Orderer receives assembled transactions.
	Orderer *orderer.Service
	// Security selects the active defense features on the client side.
	Security core.SecurityConfig
	// CommitPeer is the peer whose delivery service reports commit
	// status; defaults to the first connected peer of the identity's own
	// organization, then to the first connected peer.
	CommitPeer *peer.Peer
	// CommitTimeout bounds Submit's commit wait when the caller's
	// context has no deadline; 0 selects DefaultCommitTimeout.
	CommitTimeout time.Duration
	// Timings, when non-nil, receives the deliver_commit_wait histogram
	// (submit→commit-notified latency per transaction).
	Timings *metrics.Timings
	// Metrics, when non-nil, receives the gateway_admitted/gateway_shed
	// admission counters and gateway_flushes. Several gateways may share
	// one counter set (e.g. all simulated clients of a load run).
	Metrics *metrics.Counters
}

// Gateway is one client's connection to the network: an identity plus
// the peers it endorses through and the peer it watches for commit
// events.
type Gateway struct {
	id            *identity.Identity
	verifier      *identity.Verifier
	orderer       *orderer.Service
	peers         []*peer.Peer
	commitPeer    *peer.Peer
	commitTimeout time.Duration
	timings       *metrics.Timings
	counters      *metrics.Counters

	mu        sync.RWMutex
	sec       core.SecurityConfig
	admission *tokenBucket // nil = admission control off
}

// Connect opens a gateway for a client identity over its peers. The
// variadic peers are the default endorsement set of every contract call
// (override per call with WithEndorsers).
func Connect(id *identity.Identity, opts Options, peers ...*peer.Peer) *Gateway {
	g := &Gateway{
		id:            id,
		verifier:      opts.Verifier,
		orderer:       opts.Orderer,
		peers:         append([]*peer.Peer(nil), peers...),
		commitPeer:    opts.CommitPeer,
		commitTimeout: opts.CommitTimeout,
		timings:       opts.Timings,
		counters:      opts.Metrics,
		sec:           opts.Security,
		admission:     newTokenBucket(opts.Security.GatewayAdmissionRate, opts.Security.GatewayAdmissionBurst),
	}
	if g.commitTimeout <= 0 {
		g.commitTimeout = DefaultCommitTimeout
	}
	if g.commitPeer == nil {
		for _, p := range g.peers {
			if p != nil && p.Org() == id.MSPID() {
				g.commitPeer = p
				break
			}
		}
	}
	if g.commitPeer == nil {
		for _, p := range g.peers {
			if p != nil {
				g.commitPeer = p
				break
			}
		}
	}
	return g
}

// Identity returns the connected client identity.
func (g *Gateway) Identity() *identity.Identity { return g.id }

// CommitPeer returns the peer whose delivery service this gateway
// watches for commit status.
func (g *Gateway) CommitPeer() *peer.Peer { return g.commitPeer }

// SetSecurity swaps the active security configuration, rebuilding the
// admission token bucket from the new rate/burst knobs.
func (g *Gateway) SetSecurity(sec core.SecurityConfig) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.sec = sec
	g.admission = newTokenBucket(sec.GatewayAdmissionRate, sec.GatewayAdmissionBurst)
}

func (g *Gateway) security() core.SecurityConfig {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.sec
}

// Network selects a channel. The channel name is validated lazily: a
// mismatch with the commit peer's channel surfaces on the first contract
// call. An empty name selects the commit peer's channel.
func (g *Gateway) Network(channel string) *Network {
	return &Network{g: g, channel: channel}
}

// Network is a gateway's view of one channel.
type Network struct {
	g       *Gateway
	channel string
}

// Name returns the selected channel name.
func (n *Network) Name() string { return n.channel }

// Contract selects a chaincode on the channel.
func (n *Network) Contract(name string) *Contract {
	return &Contract{g: n.g, channel: n.channel, name: name}
}

// DeliverService exposes the commit peer's delivery service, so channel
// consumers can follow block and commit-status streams directly (with
// checkpointed replay across restarts).
func (n *Network) DeliverService() (*deliver.Service, error) {
	if n.g.commitPeer == nil {
		return nil, fmt.Errorf("gateway: no commit peer connected")
	}
	return n.g.commitPeer.Deliver(), nil
}

// Contract drives one chaincode.
type Contract struct {
	g       *Gateway
	channel string
	name    string
}

// Name returns the chaincode name.
func (c *Contract) Name() string { return c.name }

// callOptions collects per-call overrides.
type callOptions struct {
	args         []string
	transient    map[string][]byte
	endorsers    []*peer.Peer
	endorsersSet bool
}

// CallOption customizes one Evaluate/Submit/SubmitAsync call.
type CallOption func(*callOptions)

// WithArguments sets the chaincode function arguments.
func WithArguments(args ...string) CallOption {
	return func(o *callOptions) { o.args = args }
}

// WithTransient attaches confidential inputs that reach the chaincode
// without entering the transaction (Fabric's transient map).
func WithTransient(transient map[string][]byte) CallOption {
	return func(o *callOptions) { o.transient = transient }
}

// WithEndorsers overrides the gateway's default endorsement set — e.g.
// restricting a private-data write to collection members. Passing none
// explicitly requests zero endorsers and fails with ErrNoEndorsers.
func WithEndorsers(peers ...*peer.Peer) CallOption {
	return func(o *callOptions) {
		o.endorsers = peers
		o.endorsersSet = true
	}
}

func (c *Contract) options(opts []CallOption) *callOptions {
	o := &callOptions{}
	for _, opt := range opts {
		opt(o)
	}
	if !o.endorsersSet {
		o.endorsers = c.g.peers
	}
	return o
}

// checkChannel validates the lazily selected channel name.
func (c *Contract) checkChannel() error {
	if c.channel == "" || c.g.commitPeer == nil {
		return nil
	}
	if have := c.g.commitPeer.ChannelName(); c.channel != have {
		return fmt.Errorf("gateway: unknown channel %q (peers serve %q)", c.channel, have)
	}
	return nil
}

// Evaluate runs a query against a single endorser without ordering: no
// transaction is created and the ledger is not updated. The first
// endorser of the call (or the gateway's commit peer) serves the query.
func (c *Contract) Evaluate(ctx context.Context, function string, opts ...CallOption) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := c.checkChannel(); err != nil {
		return nil, err
	}
	o := c.options(opts)
	target := c.g.commitPeer
	if len(o.endorsers) > 0 {
		target = o.endorsers[0]
	}
	if target == nil {
		return nil, ErrNoEndorsers
	}
	prop, err := c.g.newProposal(c.channel, c.name, function, o.args, o.transient)
	if err != nil {
		return nil, err
	}
	resp, err := target.ProcessProposal(prop)
	if err != nil {
		return nil, fmt.Errorf("gateway: evaluate %s.%s: %w", c.name, function, err)
	}
	return resp.Response.Payload, nil
}

// Submit drives the full transaction flow — endorse, order, wait for the
// final commit status over the deliver stream — honoring ctx at every
// stage. The returned Result carries the transaction's final validation
// code as recorded by the commit peer; a non-VALID code is reported in
// the Result, not as an error.
func (c *Contract) Submit(ctx context.Context, function string, opts ...CallOption) (*Result, error) {
	commit, err := c.SubmitAsync(ctx, function, opts...)
	if err != nil {
		return nil, err
	}
	defer commit.Close()
	return commit.Status(ctx)
}

// SubmitAsync endorses and orders the transaction, returning as soon as
// the orderer accepted it. The caller collects the final validation code
// later through Commit.Status (and must Close the Commit when done).
//
// Admission control (SecurityConfig.GatewayAdmissionRate) runs first:
// a shed submission returns ErrOverloaded before any endorsement work —
// no proposal is built, no peer is contacted — so the client may retry
// after a backoff at near-zero server cost. Callers that assemble
// transactions themselves and enter through SubmitAssembledAsync bypass
// the check (they are trusted harness/adapter paths, not clients).
func (c *Contract) SubmitAsync(ctx context.Context, function string, opts ...CallOption) (*Commit, error) {
	if err := c.checkChannel(); err != nil {
		return nil, err
	}
	if err := c.g.admit(); err != nil {
		return nil, err
	}
	o := c.options(opts)
	prop, err := c.g.newProposal(c.channel, c.name, function, o.args, o.transient)
	if err != nil {
		return nil, err
	}
	tx, payload, err := c.g.EndorseProposal(ctx, prop, o.endorsers)
	if err != nil {
		return nil, err
	}
	return c.g.SubmitAssembledAsync(ctx, tx, payload)
}

// Result is the final outcome of a submitted transaction, assembled from
// its commit-status event.
type Result struct {
	TxID string
	// Payload is the chaincode's response payload in plaintext (from
	// PR_Ori under defense Feature 2).
	Payload []byte
	// Code is the final validation code the commit peer recorded.
	Code ledger.ValidationCode
	// Detail explains non-VALID codes.
	Detail string
	// BlockNum is the block the transaction landed in.
	BlockNum uint64
	// Event is the chaincode event of a VALID transaction, if any.
	Event *ledger.ChaincodeEvent
	// MissingCollections lists collections whose original private data
	// the commit peer had not obtained at commit time.
	MissingCollections []string
	// CommitWait is the submit→commit-notified latency.
	CommitWait time.Duration
}

// Commit is a pending commit notification: the handle SubmitAsync
// returns while the transaction is in ordering/validation.
type Commit struct {
	g         *Gateway
	txID      string
	payload   []byte
	sub       *deliver.Subscription
	submitted time.Time

	// mu serializes waiters (it is held across the blocking stream
	// wait, so concurrent Status calls never race on the shared
	// subscription); done latches a terminal outcome into result/err.
	// A ctx cancellation or deadline is NOT terminal: it is returned to
	// that caller but latches nothing and leaves the subscription open,
	// so a later Status call with a fresh context can still succeed.
	mu     sync.Mutex
	done   bool
	result *Result
	err    error
}

// TxID returns the pending transaction's ID.
func (c *Commit) TxID() string { return c.txID }

// Status blocks until the transaction's final commit-status event
// arrives on the deliver stream, honoring ctx; without a ctx deadline
// the gateway's commit timeout applies. If the transaction sits in a
// partial orderer batch, a targeted flush is requested first — asking
// for the status is the signal that the caller wants the block cut now.
//
// An error derived from the caller's context (cancellation or deadline)
// is transient: Status may be called again and will pick the wait back
// up. Any other outcome — the final commit status, or a failed
// subscription — is latched and returned to every subsequent call.
func (c *Commit) Status(ctx context.Context) (*Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done {
		return c.result, c.err
	}
	res, err, terminal := c.wait(ctx)
	if terminal {
		c.done = true
		c.result, c.err = res, err
		c.sub.Close()
	}
	return res, err
}

// wait performs one blocking attempt to obtain the commit status. The
// third return reports whether the outcome is terminal (latch + close
// the subscription) or ctx-derived (leave everything open for a retry).
func (c *Commit) wait(ctx context.Context) (*Result, error, bool) {
	st := c.sub.TryTxStatus(c.txID)
	if st == nil {
		// Not committed yet. Cut the partial batch only when this
		// transaction is actually sitting in it — an unconditional flush
		// here would let N concurrent waiters degenerate batching to one
		// transaction per block.
		if c.g.orderer.InPending(c.txID) {
			c.g.orderer.FlushTx(c.txID)
			if c.g.counters != nil {
				c.g.counters.Inc(metrics.GatewayFlushes)
			}
		}
		wctx := ctx
		if _, hasDeadline := ctx.Deadline(); !hasDeadline {
			var cancel context.CancelFunc
			wctx, cancel = context.WithTimeout(ctx, c.g.commitTimeout)
			defer cancel()
		}
		var err error
		st, err = c.sub.WaitTxStatus(wctx, c.txID)
		if err != nil {
			// Cancellation and deadline expiry (the caller's own, or the
			// gateway commit timeout derived above) are retryable; a dead
			// subscription (closed, or evicted as a slow consumer) is not.
			terminal := !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
			return nil, fmt.Errorf("%w: tx %s: %v", ErrCommitStatusUnavailable, c.txID, err), terminal
		}
	}
	wait := time.Since(c.submitted)
	if c.g.timings != nil {
		c.g.timings.Observe(metrics.DeliverCommitWait, wait)
	}
	return &Result{
		TxID:               c.txID,
		Payload:            c.payload,
		Code:               st.Code,
		Detail:             st.Detail,
		BlockNum:           st.BlockNum,
		Event:              st.ChaincodeEvent,
		MissingCollections: st.MissingCollections,
		CommitWait:         wait,
	}, nil, true
}

// Close releases the commit's deliver subscription: every SubmitAsync
// handle must be closed (or driven to a terminal Status) or its
// subscription keeps receiving every block until slow-consumer eviction.
// Close is idempotent with the close Status performs on a terminal
// outcome, and safe concurrently with a blocked Status — which then
// returns ErrCommitStatusUnavailable.
func (c *Commit) Close() { c.sub.Close() }

// SubmitAssembledAsync orders a pre-assembled transaction and returns a
// pending Commit. The deliver subscription is registered before the
// transaction reaches the orderer, so the commit-status event cannot be
// missed. Exposed for the deprecated client.Client adapter and for
// attack harnesses that interpose between endorsement and ordering.
func (g *Gateway) SubmitAssembledAsync(ctx context.Context, tx *ledger.Transaction, payload []byte) (*Commit, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if g.orderer == nil {
		return nil, fmt.Errorf("gateway: no orderer connected")
	}
	if g.commitPeer == nil {
		return nil, fmt.Errorf("gateway: no commit peer connected")
	}
	sub := g.commitPeer.Deliver().SubscribeLive()
	start := time.Now()
	if err := g.orderer.Submit(tx); err != nil {
		sub.Close()
		return nil, fmt.Errorf("gateway: order tx %s: %w", tx.TxID, err)
	}
	return &Commit{g: g, txID: tx.TxID, payload: payload, sub: sub, submitted: start}, nil
}

// SubmitAssembled orders a pre-assembled transaction and waits for its
// final commit status.
func (g *Gateway) SubmitAssembled(ctx context.Context, tx *ledger.Transaction, payload []byte) (*Result, error) {
	commit, err := g.SubmitAssembledAsync(ctx, tx, payload)
	if err != nil {
		return nil, err
	}
	defer commit.Close()
	return commit.Status(ctx)
}
