// Package gateway implements the Fabric Gateway-style client API: a
// client connects once (Connect), navigates to a channel and contract
// (Gateway.Network, Network.Contract), and drives transactions through
// context-first calls — Contract.Evaluate for queries, Contract.Submit
// for the full endorse → order → commit-wait flow, Contract.SubmitAsync
// when the caller wants to overlap work with the commit wait.
//
// The gateway is written against the transport-agnostic interfaces of
// internal/service: its peers are service.Peer and its orderer a
// service.Orderer, so the same Gateway endorses through in-process
// peers (*peer.Peer) or through wire clients talking to peers in other
// OS processes — and the Gateway itself satisfies service.Gateway, so
// it can in turn be served over the wire (wire.RegisterGateway).
//
// Submit does not return at ordering time: it blocks (honoring the
// context's deadline) until the transaction's final validation code
// arrives over the commit peer's delivery stream — the same push-based
// commit notification real Fabric clients rely on. There is no
// peer-state polling anywhere in this path.
package gateway

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/deliver"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/service"
)

// DefaultCommitTimeout bounds the commit wait when the caller's context
// carries no deadline.
const DefaultCommitTimeout = 30 * time.Second

// Result is the final outcome of a submitted transaction. It aliases
// service.SubmitResult — the struct that travels over the wire — so the
// local and remote call surfaces share one result shape.
type Result = service.SubmitResult

// Options wires a Gateway beyond its identity and peers.
type Options struct {
	// Verifier checks endorsement signatures under defense Feature 2.
	Verifier *identity.Verifier
	// Orderer receives assembled transactions (in-process service or
	// wire client).
	Orderer service.Orderer
	// Security selects the active defense features on the client side.
	Security core.SecurityConfig
	// CommitPeer is the peer whose delivery stream reports commit
	// status; defaults to the first connected peer of the identity's own
	// organization, then to the first connected peer.
	CommitPeer service.Peer
	// CommitTimeout bounds Submit's commit wait when the caller's
	// context has no deadline; 0 selects DefaultCommitTimeout.
	CommitTimeout time.Duration
	// Timings, when non-nil, receives the deliver_commit_wait histogram
	// (submit→commit-notified latency per transaction).
	Timings *metrics.Timings
	// Metrics, when non-nil, receives the gateway_admitted/gateway_shed
	// admission counters and gateway_flushes. Several gateways may share
	// one counter set (e.g. all simulated clients of a load run).
	Metrics *metrics.Counters
}

// Gateway is one client's connection to the network: an identity plus
// the peers it endorses through and the peer it watches for commit
// events. It satisfies service.Gateway.
type Gateway struct {
	id         *identity.Identity
	verifier   *identity.Verifier
	orderer    service.Orderer
	commitPeer service.Peer
	// router multiplexes every pending commit wait onto one shared
	// live deliver subscription to the commit peer.
	router *commitRouter

	// pmu guards the connected peer set, which grows when peers join
	// the channel after the gateway connected (Network.JoinPeer).
	pmu    sync.RWMutex
	peers  []service.Peer
	byName map[string]service.Peer

	commitTimeout time.Duration
	timings       *metrics.Timings
	counters      *metrics.Counters

	mu        sync.RWMutex
	sec       core.SecurityConfig
	admission *tokenBucket // nil = admission control off
}

var _ service.Gateway = (*Gateway)(nil)

// Connect opens a gateway for a client identity over its peers. The
// variadic peers are the default endorsement set of every contract call
// (override per call with WithEndorsers, or by naming endorsers in the
// InvokeRequest).
func Connect(id *identity.Identity, opts Options, peers ...service.Peer) *Gateway {
	g := &Gateway{
		id:            id,
		verifier:      opts.Verifier,
		orderer:       opts.Orderer,
		peers:         append([]service.Peer(nil), peers...),
		byName:        make(map[string]service.Peer, len(peers)),
		commitPeer:    opts.CommitPeer,
		commitTimeout: opts.CommitTimeout,
		timings:       opts.Timings,
		counters:      opts.Metrics,
		sec:           opts.Security,
		admission:     newTokenBucket(opts.Security.GatewayAdmissionRate, opts.Security.GatewayAdmissionBurst),
	}
	for _, p := range g.peers {
		if p != nil {
			g.byName[p.Name()] = p
		}
	}
	if g.commitPeer != nil {
		g.byName[g.commitPeer.Name()] = g.commitPeer
	}
	if g.commitTimeout <= 0 {
		g.commitTimeout = DefaultCommitTimeout
	}
	if g.commitPeer == nil {
		for _, p := range g.peers {
			if p != nil && p.Org() == id.MSPID() {
				g.commitPeer = p
				break
			}
		}
	}
	if g.commitPeer == nil {
		for _, p := range g.peers {
			if p != nil {
				g.commitPeer = p
				break
			}
		}
	}
	// The closure defers the commitPeer dereference to first use:
	// submit paths check for a nil commit peer before registering.
	g.router = newCommitRouter(func() service.Stream { return g.commitPeer.SubscribeLive() })
	return g
}

// Close releases the gateway's shared commit-status subscription.
// Outstanding commit waits fail with ErrCommitStatusUnavailable and
// further submits are refused; peer and orderer connections are owned
// by the caller and left open. Idempotent.
func (g *Gateway) Close() { g.router.close() }

// Identity returns the connected client identity.
func (g *Gateway) Identity() *identity.Identity { return g.id }

// CommitPeer returns the peer whose delivery stream this gateway
// watches for commit status.
func (g *Gateway) CommitPeer() service.Peer { return g.commitPeer }

// AddPeer adds a peer to the gateway's connected set, making it part of
// the default endorsement set and resolvable by name in InvokeRequests.
// Used when a peer joins the channel after the gateway connected.
func (g *Gateway) AddPeer(p service.Peer) {
	if p == nil {
		return
	}
	g.pmu.Lock()
	defer g.pmu.Unlock()
	if _, ok := g.byName[p.Name()]; ok {
		return
	}
	g.peers = append(g.peers, p)
	g.byName[p.Name()] = p
}

// connectedPeers snapshots the connected peer set.
func (g *Gateway) connectedPeers() []service.Peer {
	g.pmu.RLock()
	defer g.pmu.RUnlock()
	return append([]service.Peer(nil), g.peers...)
}

// peerByName resolves a connected peer.
func (g *Gateway) peerByName(name string) (service.Peer, bool) {
	g.pmu.RLock()
	defer g.pmu.RUnlock()
	p, ok := g.byName[name]
	return p, ok
}

// SetSecurity swaps the active security configuration, rebuilding the
// admission token bucket from the new rate/burst knobs.
func (g *Gateway) SetSecurity(sec core.SecurityConfig) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.sec = sec
	g.admission = newTokenBucket(sec.GatewayAdmissionRate, sec.GatewayAdmissionBurst)
}

func (g *Gateway) security() core.SecurityConfig {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.sec
}

// Network selects a channel. The channel name is validated lazily: a
// mismatch with the commit peer's channel surfaces on the first contract
// call. An empty name selects the commit peer's channel.
func (g *Gateway) Network(channel string) *Network {
	return &Network{g: g, channel: channel}
}

// Network is a gateway's view of one channel.
type Network struct {
	g       *Gateway
	channel string
}

// Name returns the selected channel name.
func (n *Network) Name() string { return n.channel }

// Contract selects a chaincode on the channel.
func (n *Network) Contract(name string) *Contract {
	return &Contract{g: n.g, channel: n.channel, name: name}
}

// DeliverService exposes the commit peer's delivery service, so channel
// consumers can follow block and commit-status streams directly (with
// checkpointed replay across restarts). Only in-process peers expose
// the concrete service; for remote commit peers use the gateway's
// SubscribeFrom surface on the peer itself.
func (n *Network) DeliverService() (*deliver.Service, error) {
	if n.g.commitPeer == nil {
		return nil, fmt.Errorf("gateway: no commit peer connected")
	}
	dp, ok := n.g.commitPeer.(interface{ Deliver() *deliver.Service })
	if !ok {
		return nil, fmt.Errorf("gateway: commit peer %s is remote; no in-process deliver service", n.g.commitPeer.Name())
	}
	return dp.Deliver(), nil
}

// Contract drives one chaincode.
type Contract struct {
	g       *Gateway
	channel string
	name    string
}

// Name returns the chaincode name.
func (c *Contract) Name() string { return c.name }

// callOptions collects per-call overrides.
type callOptions struct {
	args         []string
	transient    map[string][]byte
	endorsers    []service.Endorser
	endorsersSet bool
}

// CallOption customizes one Evaluate/Submit/SubmitAsync call.
type CallOption func(*callOptions)

// WithArguments sets the chaincode function arguments.
func WithArguments(args ...string) CallOption {
	return func(o *callOptions) { o.args = args }
}

// WithTransient attaches confidential inputs that reach the chaincode
// without entering the transaction (Fabric's transient map).
func WithTransient(transient map[string][]byte) CallOption {
	return func(o *callOptions) { o.transient = transient }
}

// WithEndorsers overrides the gateway's default endorsement set — e.g.
// restricting a private-data write to collection members. Passing none
// explicitly requests zero endorsers and fails with ErrNoEndorsers.
func WithEndorsers(endorsers ...service.Endorser) CallOption {
	return func(o *callOptions) {
		o.endorsers = endorsers
		o.endorsersSet = true
	}
}

func (c *Contract) options(opts []CallOption) *callOptions {
	o := &callOptions{}
	for _, opt := range opts {
		opt(o)
	}
	if !o.endorsersSet {
		o.endorsers = service.AsEndorsers(c.g.connectedPeers())
	}
	return o
}

// checkChannel validates a lazily selected channel name.
func (g *Gateway) checkChannel(channel string) error {
	if channel == "" || g.commitPeer == nil {
		return nil
	}
	if have := g.commitPeer.ChannelName(); channel != have {
		return fmt.Errorf("gateway: unknown channel %q (peers serve %q)", channel, have)
	}
	return nil
}

// resolveEndorsers maps InvokeRequest endorser names onto connected
// peers; nil without an explicit set selects every connected peer.
func (g *Gateway) resolveEndorsers(req *service.InvokeRequest) ([]service.Endorser, error) {
	if !req.EndorsersSet && req.Endorsers == nil {
		return service.AsEndorsers(g.connectedPeers()), nil
	}
	out := make([]service.Endorser, 0, len(req.Endorsers))
	for _, name := range req.Endorsers {
		p, ok := g.peerByName(name)
		if !ok {
			return nil, fmt.Errorf("%w: endorser %q not connected", ErrNoEndorsers, name)
		}
		out = append(out, p)
	}
	return out, nil
}

// Evaluate runs a query against a single endorser without ordering: no
// transaction is created and the ledger is not updated. The first
// endorser of the request (or the gateway's commit peer) serves the
// query.
func (g *Gateway) Evaluate(ctx context.Context, req *service.InvokeRequest) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := g.checkChannel(req.Channel); err != nil {
		return nil, err
	}
	endorsers, err := g.resolveEndorsers(req)
	if err != nil {
		return nil, err
	}
	var target service.Endorser
	if g.commitPeer != nil {
		target = g.commitPeer
	}
	if len(endorsers) > 0 {
		target = endorsers[0]
	}
	if target == nil {
		return nil, ErrNoEndorsers
	}
	prop, err := g.newProposal(req.Channel, req.Chaincode, req.Function, req.Args, req.Transient)
	if err != nil {
		return nil, err
	}
	resp, err := target.Endorse(ctx, prop)
	if err != nil {
		return nil, fmt.Errorf("gateway: evaluate %s.%s: %w", req.Chaincode, req.Function, err)
	}
	return resp.Response.Payload, nil
}

// Submit drives the full transaction flow — endorse, order, wait for the
// final commit status over the deliver stream — honoring ctx at every
// stage. The returned Result carries the transaction's final validation
// code as recorded by the commit peer; a non-VALID code is reported in
// the Result, not as an error.
func (g *Gateway) Submit(ctx context.Context, req *service.InvokeRequest) (*Result, error) {
	commit, err := g.SubmitAsync(ctx, req)
	if err != nil {
		return nil, err
	}
	defer commit.Close()
	return commit.Status(ctx)
}

// SubmitAsync endorses and orders the transaction described by the
// request, returning as soon as the orderer accepted it. The caller
// collects the final validation code later through Commit.Status (and
// must Close the Commit when done).
func (g *Gateway) SubmitAsync(ctx context.Context, req *service.InvokeRequest) (service.Commit, error) {
	endorsers, err := g.resolveEndorsers(req)
	if err != nil {
		return nil, err
	}
	commit, err := g.submitAsync(ctx, req.Channel, req.Chaincode, req.Function, req.Args, req.Transient, endorsers)
	if err != nil {
		return nil, err
	}
	return commit, nil
}

// SubmitWithRetry submits a request, re-endorsing and resubmitting when
// the result is an MVCC read conflict — the standard SDK pattern for
// contended keys, since a conflict only means another transaction
// committed between simulation and validation.
func (g *Gateway) SubmitWithRetry(ctx context.Context, req *service.InvokeRequest, maxAttempts int) (*Result, error) {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	var last *Result
	for attempt := 0; attempt < maxAttempts; attempt++ {
		res, err := g.Submit(ctx, req)
		if err != nil {
			return nil, err
		}
		if res.Code != ledger.MVCCConflict {
			return res, nil
		}
		last = res
	}
	return last, fmt.Errorf("gateway: tx still conflicting after %d attempts", maxAttempts)
}

// submitAsync is the shared endorse→order path behind the struct-based
// and Contract call surfaces.
//
// Admission control (SecurityConfig.GatewayAdmissionRate) runs first: a
// shed submission returns ErrOverloaded (carrying a retry-after hint)
// before any endorsement work — no proposal is built, no peer is
// contacted — so the client may retry after a backoff at near-zero
// server cost. Callers that assemble transactions themselves and enter
// through SubmitAssembledAsync bypass the check (they are trusted
// harness/adapter paths, not clients).
func (g *Gateway) submitAsync(
	ctx context.Context,
	channel, chaincodeName, function string,
	args []string,
	transient map[string][]byte,
	endorsers []service.Endorser,
) (*Commit, error) {
	if err := g.checkChannel(channel); err != nil {
		return nil, err
	}
	if err := g.admit(); err != nil {
		return nil, err
	}
	prop, err := g.newProposal(channel, chaincodeName, function, args, transient)
	if err != nil {
		return nil, err
	}
	tx, payload, err := g.EndorseProposal(ctx, prop, endorsers)
	if err != nil {
		return nil, err
	}
	return g.SubmitAssembledAsync(ctx, tx, payload)
}

// Evaluate runs a query against a single endorser without ordering. The
// first endorser of the call (or the gateway's commit peer) serves the
// query.
func (c *Contract) Evaluate(ctx context.Context, function string, opts ...CallOption) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := c.g.checkChannel(c.channel); err != nil {
		return nil, err
	}
	o := c.options(opts)
	var target service.Endorser
	if c.g.commitPeer != nil {
		target = c.g.commitPeer
	}
	if len(o.endorsers) > 0 {
		target = o.endorsers[0]
	}
	if target == nil {
		return nil, ErrNoEndorsers
	}
	prop, err := c.g.newProposal(c.channel, c.name, function, o.args, o.transient)
	if err != nil {
		return nil, err
	}
	resp, err := target.Endorse(ctx, prop)
	if err != nil {
		return nil, fmt.Errorf("gateway: evaluate %s.%s: %w", c.name, function, err)
	}
	return resp.Response.Payload, nil
}

// Submit drives the full transaction flow through the contract's
// call-option surface; see Gateway.Submit.
func (c *Contract) Submit(ctx context.Context, function string, opts ...CallOption) (*Result, error) {
	commit, err := c.SubmitAsync(ctx, function, opts...)
	if err != nil {
		return nil, err
	}
	defer commit.Close()
	return commit.Status(ctx)
}

// SubmitAsync endorses and orders the transaction, returning as soon as
// the orderer accepted it; see Gateway.SubmitAsync.
func (c *Contract) SubmitAsync(ctx context.Context, function string, opts ...CallOption) (*Commit, error) {
	o := c.options(opts)
	return c.g.submitAsync(ctx, c.channel, c.name, function, o.args, o.transient, o.endorsers)
}

// Commit is a pending commit notification: the handle SubmitAsync
// returns while the transaction is in ordering/validation. It satisfies
// service.Commit.
type Commit struct {
	g       *Gateway
	txID    string
	payload []byte
	// ch yields the transaction's commit-status event, routed off the
	// gateway's shared deliver subscription; it closes without a value
	// when the wait is terminally dead (stream failure or Close).
	ch        <-chan *deliver.TxStatusEvent
	submitted time.Time

	// mu serializes waiters (it is held across the blocking wait, so
	// concurrent Status calls never race on the result channel); done
	// latches a terminal outcome into result/err.
	// A ctx cancellation or deadline is NOT terminal: it is returned to
	// that caller but latches nothing and leaves the subscription open,
	// so a later Status call with a fresh context can still succeed.
	mu     sync.Mutex
	done   bool
	result *Result
	err    error
}

var _ service.Commit = (*Commit)(nil)

// TxID returns the pending transaction's ID.
func (c *Commit) TxID() string { return c.txID }

// Status blocks until the transaction's final commit-status event
// arrives on the deliver stream, honoring ctx; without a ctx deadline
// the gateway's commit timeout applies. If the transaction sits in a
// partial orderer batch, a targeted flush is requested first — asking
// for the status is the signal that the caller wants the block cut now.
//
// An error derived from the caller's context (cancellation or deadline)
// is transient: Status may be called again and will pick the wait back
// up. Any other outcome — the final commit status, or a failed
// subscription — is latched and returned to every subsequent call.
func (c *Commit) Status(ctx context.Context) (*Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done {
		return c.result, c.err
	}
	res, err, terminal := c.wait(ctx)
	if terminal {
		c.done = true
		c.result, c.err = res, err
		c.g.router.unregister(c.txID)
	}
	return res, err
}

// wait performs one blocking attempt to obtain the commit status. The
// third return reports whether the outcome is terminal (latch + close
// the subscription) or ctx-derived (leave everything open for a retry).
func (c *Commit) wait(ctx context.Context) (*Result, error, bool) {
	var st *deliver.TxStatusEvent
	select {
	case s, ok := <-c.ch:
		if !ok {
			// A closed channel — router stream failure, or Close — is
			// terminal; cancellation and deadline expiry are retryable.
			return nil, fmt.Errorf("%w: tx %s: %v", ErrCommitStatusUnavailable, c.txID, deliver.ErrClosed), true
		}
		st = s
	default:
	}
	if st == nil {
		// Not committed yet: request a targeted flush. FlushTx cuts the
		// pending partial batch only if it still holds this transaction
		// (so N concurrent waiters sharing one batch produce one cut,
		// and an already-cut transaction makes it a no-op) — the
		// condition lives orderer-side, which for a remote orderer
		// saves the separate InPending round trip per commit wait.
		c.g.orderer.FlushTx(c.txID)
		if c.g.counters != nil {
			c.g.counters.Inc(metrics.GatewayFlushes)
		}
		wctx := ctx
		if _, hasDeadline := ctx.Deadline(); !hasDeadline {
			var cancel context.CancelFunc
			wctx, cancel = context.WithTimeout(ctx, c.g.commitTimeout)
			defer cancel()
		}
		select {
		case s, ok := <-c.ch:
			if !ok {
				return nil, fmt.Errorf("%w: tx %s: %v", ErrCommitStatusUnavailable, c.txID, deliver.ErrClosed), true
			}
			st = s
		case <-wctx.Done():
			// The caller's own cancellation, or the gateway commit
			// timeout derived above: retryable either way.
			return nil, fmt.Errorf("%w: tx %s: %v", ErrCommitStatusUnavailable, c.txID, wctx.Err()), false
		}
	}
	wait := time.Since(c.submitted)
	if c.g.timings != nil {
		c.g.timings.Observe(metrics.DeliverCommitWait, wait)
	}
	return &Result{
		TxID:               c.txID,
		Payload:            c.payload,
		Code:               st.Code,
		Detail:             st.Detail,
		BlockNum:           st.BlockNum,
		Event:              st.ChaincodeEvent,
		MissingCollections: st.MissingCollections,
		CommitWait:         wait,
	}, nil, true
}

// Close releases the commit's wait registration on the gateway's
// shared deliver subscription. Close is idempotent with the release
// Status performs on a terminal outcome, and safe concurrently with a
// blocked Status — which then returns ErrCommitStatusUnavailable.
func (c *Commit) Close() { c.g.router.unregister(c.txID) }

// SubmitAssembledAsync orders a pre-assembled transaction and returns a
// pending Commit. The commit wait is registered on the gateway's shared
// deliver subscription — opened (and, for remote commit peers,
// acknowledged by the serving process) before the transaction reaches
// the orderer, so the commit-status event cannot be missed. Exposed for
// harnesses that interpose between endorsement and ordering.
func (g *Gateway) SubmitAssembledAsync(ctx context.Context, tx *ledger.Transaction, payload []byte) (*Commit, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if g.orderer == nil {
		return nil, fmt.Errorf("gateway: no orderer connected")
	}
	if g.commitPeer == nil {
		return nil, fmt.Errorf("gateway: no commit peer connected")
	}
	ch, err := g.router.register(tx.TxID)
	if err != nil {
		return nil, fmt.Errorf("gateway: commit stream: %w", err)
	}
	start := time.Now()
	if err := g.orderer.Order(ctx, tx); err != nil {
		g.router.unregister(tx.TxID)
		return nil, fmt.Errorf("gateway: order tx %s: %w", tx.TxID, err)
	}
	return &Commit{g: g, txID: tx.TxID, payload: payload, ch: ch, submitted: start}, nil
}

// SubmitAssembled orders a pre-assembled transaction and waits for its
// final commit status.
func (g *Gateway) SubmitAssembled(ctx context.Context, tx *ledger.Transaction, payload []byte) (*Result, error) {
	commit, err := g.SubmitAssembledAsync(ctx, tx, payload)
	if err != nil {
		return nil, err
	}
	defer commit.Close()
	return commit.Status(ctx)
}
