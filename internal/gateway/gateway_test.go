package gateway

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/deliver"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/orderer"
	"repro/internal/service"
)

// commitFixture hand-builds a Commit over a real deliver service and a
// real (empty) orderer, exactly as SubmitAssembledAsync would have,
// without needing endorsing peers.
type commitFixture struct {
	svc *deliver.Service
	ord *orderer.Service
	tx  *ledger.Transaction
}

func newCommitFixture(t *testing.T) (*commitFixture, *Commit) {
	t.Helper()
	svc := deliver.New(deliver.Config{Source: ledger.NewBlockStore()})
	ord := orderer.New(orderer.Config{OrdererCount: 3, BatchSize: 8, Seed: 7})
	ord.RegisterDelivery(func(*ledger.Block) {})
	t.Cleanup(ord.Stop)
	g := &Gateway{orderer: ord, commitTimeout: DefaultCommitTimeout}
	g.router = newCommitRouter(func() service.Stream { return svc.SubscribeLive() })
	tx := &ledger.Transaction{
		TxID:            "tx-under-test",
		ChannelID:       "testchan",
		Proposal:        &ledger.Proposal{TxID: "tx-under-test", Chaincode: "cc", Function: "set"},
		ResponsePayload: []byte(`{"tx_id":"tx-under-test"}`),
	}
	ch, err := g.router.register(tx.TxID)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	c := &Commit{g: g, txID: tx.TxID, payload: []byte("ok"), ch: ch, submitted: time.Now()}
	return &commitFixture{svc: svc, ord: ord, tx: tx}, c
}

// publishTx commits the fixture transaction: a block containing it,
// flagged VALID, is published to the delivery service.
func (f *commitFixture) publishTx() {
	b := ledger.NewBlock(0, nil, []*ledger.Transaction{f.tx})
	b.Metadata.ValidationFlags[0] = ledger.Valid
	f.svc.Publish(b)
}

// TestStatusRetryAfterCtxError is the sticky-error regression test: a
// Status call that dies on the caller's context must not latch the error
// or close the subscription — a second call with a healthy context has
// to observe the commit. On the pre-fix code (sync.Once + unconditional
// subscription close) the second call returns the first call's
// cancellation error.
func TestStatusRetryAfterCtxError(t *testing.T) {
	f, c := newCommitFixture(t)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the first wait dies immediately on ctx
	if _, err := c.Status(ctx); !errors.Is(err, ErrCommitStatusUnavailable) {
		t.Fatalf("first Status: got err %v, want ErrCommitStatusUnavailable", err)
	}

	f.publishTx() // the transaction commits after the failed wait

	res, err := c.Status(context.Background())
	if err != nil {
		t.Fatalf("second Status after transient cancellation: %v", err)
	}
	if res.TxID != "tx-under-test" || res.Code != ledger.Valid {
		t.Fatalf("second Status: got %+v, want VALID tx-under-test", res)
	}
}

// TestStatusRetryAfterDeadline exercises the same path through a
// deadline expiry instead of an explicit cancel.
func TestStatusRetryAfterDeadline(t *testing.T) {
	f, c := newCommitFixture(t)

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := c.Status(ctx); !errors.Is(err, ErrCommitStatusUnavailable) {
		t.Fatalf("first Status: got err %v, want ErrCommitStatusUnavailable", err)
	}

	f.publishTx()

	if _, err := c.Status(context.Background()); err != nil {
		t.Fatalf("second Status after deadline expiry: %v", err)
	}
}

// TestStatusLatchesResult asserts a successful outcome is latched: later
// calls return the same Result without touching the (closed) stream.
func TestStatusLatchesResult(t *testing.T) {
	f, c := newCommitFixture(t)
	f.publishTx()

	first, err := c.Status(context.Background())
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	again, err := c.Status(context.Background())
	if err != nil || again != first {
		t.Fatalf("latched Status: got (%p, %v), want (%p, nil)", again, err, first)
	}
}

// TestStatusTerminalAfterClose asserts that a dead subscription is a
// terminal outcome: once the handle is closed, Status fails and stays
// failed even after a healthy retry.
func TestStatusTerminalAfterClose(t *testing.T) {
	f, c := newCommitFixture(t)
	c.Close()
	if _, err := c.Status(context.Background()); !errors.Is(err, ErrCommitStatusUnavailable) {
		t.Fatalf("Status after Close: got %v, want ErrCommitStatusUnavailable", err)
	}
	f.publishTx()
	if _, err := c.Status(context.Background()); !errors.Is(err, ErrCommitStatusUnavailable) {
		t.Fatalf("Status stays terminal after Close: got %v", err)
	}
}

// TestCloseIdempotent: Close may be called repeatedly and after a
// terminal Status (which releases internally) without panicking. The
// gateway's shared deliver subscription survives commit handles — only
// Gateway.Close releases it.
func TestCloseIdempotent(t *testing.T) {
	f, c := newCommitFixture(t)
	if n := f.svc.SubscriberCount(); n != 1 {
		t.Fatalf("SubscriberCount before Close = %d, want 1", n)
	}
	c.Close()
	c.Close()
	if n := f.svc.SubscriberCount(); n != 1 {
		t.Fatalf("SubscriberCount after handle Close = %d, want 1 (shared)", n)
	}
	c.g.Close()
	c.g.Close()
	if n := f.svc.SubscriberCount(); n != 0 {
		t.Fatalf("SubscriberCount after Gateway Close = %d, want 0", n)
	}

	// And the other order: terminal Status first, Close after.
	f2, c2 := newCommitFixture(t)
	f2.publishTx()
	if _, err := c2.Status(context.Background()); err != nil {
		t.Fatalf("Status: %v", err)
	}
	c2.Close()
	c2.g.Close()
	if n := f2.svc.SubscriberCount(); n != 0 {
		t.Fatalf("SubscriberCount after Status+Close = %d, want 0", n)
	}
}

// TestConcurrentStatusSingleWinner: many goroutines calling Status on
// one handle must all observe the same Result with no race on the
// shared subscription.
func TestConcurrentStatusSingleWinner(t *testing.T) {
	f, c := newCommitFixture(t)

	const waiters = 8
	var wg sync.WaitGroup
	results := make([]*Result, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Status(context.Background())
		}(i)
	}
	time.Sleep(10 * time.Millisecond) // let the waiters block on the stream
	f.publishTx()
	wg.Wait()
	for i := 0; i < waiters; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("waiter %d saw a different Result", i)
		}
	}
}

// TestAdmissionPrecedesEndorsement: with a one-token bucket, the first
// submission is admitted (and fails later, at endorsement, for lack of
// endorsers) while the second is shed with ErrOverloaded before any
// endorsement work — proving the admission check runs first.
func TestAdmissionPrecedesEndorsement(t *testing.T) {
	ca, err := identity.NewCA("org1")
	if err != nil {
		t.Fatal(err)
	}
	id, err := ca.Issue("client0.org1", identity.RoleClient)
	if err != nil {
		t.Fatal(err)
	}
	var counters metrics.Counters
	g := Connect(id, Options{
		Security: core.SecurityConfig{GatewayAdmissionRate: 0.001, GatewayAdmissionBurst: 1},
		Metrics:  &counters,
	}) // no peers: an admitted submission fails with ErrNoEndorsers
	contract := g.Network("").Contract("cc")

	if _, err := contract.SubmitAsync(context.Background(), "set"); !errors.Is(err, ErrNoEndorsers) {
		t.Fatalf("first SubmitAsync: got %v, want ErrNoEndorsers (admitted)", err)
	}
	if _, err := contract.SubmitAsync(context.Background(), "set"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second SubmitAsync: got %v, want ErrOverloaded (shed)", err)
	}
	if got := counters.Get(metrics.GatewayAdmitted); got != 1 {
		t.Errorf("gateway_admitted = %d, want 1", got)
	}
	if got := counters.Get(metrics.GatewayShed); got != 1 {
		t.Errorf("gateway_shed = %d, want 1", got)
	}
}

// TestAdmissionDisabledByDefault: rate 0 admits everything.
func TestAdmissionDisabledByDefault(t *testing.T) {
	ca, _ := identity.NewCA("org1")
	id, _ := ca.Issue("client0.org1", identity.RoleClient)
	g := Connect(id, Options{})
	contract := g.Network("").Contract("cc")
	for i := 0; i < 50; i++ {
		if _, err := contract.SubmitAsync(context.Background(), "set"); !errors.Is(err, ErrNoEndorsers) {
			t.Fatalf("SubmitAsync %d: got %v, want ErrNoEndorsers", i, err)
		}
	}
}

// TestTokenBucketRefill covers the bucket mechanics: burst drains, then
// tokens come back at the configured rate.
func TestTokenBucketRefill(t *testing.T) {
	tb := newTokenBucket(1000, 2)
	if ok, _ := tb.allow(); !ok {
		t.Fatal("burst of 2 did not admit the first submission")
	}
	if ok, _ := tb.allow(); !ok {
		t.Fatal("burst of 2 did not admit the second submission")
	}
	if ok, retry := tb.allow(); ok {
		t.Fatal("third immediate submission admitted past the burst")
	} else if retry <= 0 {
		t.Fatalf("shed submission carried no retry-after hint: %v", retry)
	}
	time.Sleep(5 * time.Millisecond) // 1000/s → ≥1 token back
	if ok, _ := tb.allow(); !ok {
		t.Fatal("no token after refill interval")
	}
}

func TestTokenBucketDefaults(t *testing.T) {
	if newTokenBucket(0, 10) != nil {
		t.Fatal("rate 0 must disable the bucket")
	}
	tb := newTokenBucket(0.5, 0) // burst defaults to max(1, round(rate))
	if ok, _ := tb.allow(); !ok {
		t.Fatal("default burst below 1")
	}
	if ok, _ := tb.allow(); ok {
		t.Fatal("fractional-rate bucket admitted a second immediate submission")
	}
}
