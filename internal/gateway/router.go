// Commit-status routing: one live deliver subscription per gateway,
// multiplexed across every pending commit wait.
package gateway

import (
	"sync"

	"repro/internal/deliver"
	"repro/internal/service"
)

// commitRouter fans a single live deliver subscription out to
// per-transaction commit waiters. Before the router, every SubmitAsync
// opened its own subscription to the commit peer and tore it down when
// the handle closed; over the wire that is a stream-open round trip
// plus a cancel frame per transaction, and every block's events were
// duplicated once per in-flight commit. The router pays the
// subscription once, keeps it across transactions, and routes each
// TxStatusEvent to the one waiter registered under its transaction ID.
type commitRouter struct {
	// subscribe opens a live stream on the gateway's commit peer; set
	// once at construction (tests inject their own event source).
	subscribe func() service.Stream

	mu      sync.Mutex
	sub     service.Stream // nil until the first waiter, and after a stream failure
	waiters map[string]commitWaiter
	closed  bool
}

// commitWaiter is one registered commit wait: its result channel and
// the stream it was registered under, so a dying stream fails exactly
// the waiters that depended on it and none registered against its
// replacement.
type commitWaiter struct {
	ch  chan *deliver.TxStatusEvent
	sub service.Stream
}

func newCommitRouter(subscribe func() service.Stream) *commitRouter {
	return &commitRouter{subscribe: subscribe, waiters: make(map[string]commitWaiter)}
}

// register adds a waiter for txID, subscribing (or, after a stream
// failure, resubscribing) to the commit peer first. The subscription is
// live — and, for a remote commit peer, acknowledged by the serving
// process — before register returns, so a transaction ordered
// afterwards cannot have its commit status slip past the router. The
// returned channel yields the transaction's status event; it closes
// without a value when the wait is terminally dead (stream failure or
// unregister).
func (r *commitRouter) register(txID string) (<-chan *deliver.TxStatusEvent, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, deliver.ErrClosed
	}
	if r.sub == nil {
		sub := r.subscribe()
		if err := sub.Err(); err != nil {
			sub.Close()
			return nil, err
		}
		r.sub = sub
		go r.pump(sub)
	}
	ch := make(chan *deliver.TxStatusEvent, 1)
	r.waiters[txID] = commitWaiter{ch: ch, sub: r.sub}
	return ch, nil
}

// unregister drops txID's waiter, closing its channel so a blocked
// Status observes a terminal outcome. Idempotent, and safe against the
// pump's concurrent delivery: whichever side wins the lock settles the
// waiter, the loser finds it gone.
func (r *commitRouter) unregister(txID string) {
	r.mu.Lock()
	if w, ok := r.waiters[txID]; ok {
		delete(r.waiters, txID)
		close(w.ch)
	}
	r.mu.Unlock()
}

// pump consumes one subscription, routing status events to waiters.
// Each waiter receives at most one event on a cap-1 channel, so the
// send under the lock never blocks. When the stream ends — commit peer
// shutdown, slow-consumer eviction, router close — the waiters
// registered under it are failed and the router resets, so the next
// register resubscribes.
func (r *commitRouter) pump(sub service.Stream) {
	for ev := range sub.Events() {
		st, ok := ev.(*deliver.TxStatusEvent)
		if !ok {
			continue
		}
		r.mu.Lock()
		if w, ok := r.waiters[st.TxID]; ok {
			delete(r.waiters, st.TxID)
			w.ch <- st
		}
		r.mu.Unlock()
	}
	r.mu.Lock()
	if r.sub == sub {
		r.sub = nil
	}
	for id, w := range r.waiters {
		if w.sub == sub {
			delete(r.waiters, id)
			close(w.ch)
		}
	}
	r.mu.Unlock()
}

// close shuts the shared subscription down and fails every outstanding
// waiter; further registers are refused. Used by Gateway.Close.
func (r *commitRouter) close() {
	r.mu.Lock()
	r.closed = true
	sub := r.sub
	r.mu.Unlock()
	if sub != nil {
		sub.Close() // the pump drains out, failing the waiters
	}
}
