package service

import (
	"context"
	"time"

	"repro/internal/deliver"
	"repro/internal/ledger"
)

// InvokeRequest is the one request shape of every gateway call. It is
// plain data — JSON-marshalable for the wire protocol — so the local
// and remote call surfaces cannot diverge. Endorsers are referenced by
// node name; the serving gateway resolves names against its connected
// peers.
type InvokeRequest struct {
	// Channel selects the channel; empty means the gateway's default
	// (its commit peer's channel).
	Channel string `json:"channel,omitempty"`
	// Chaincode and Function name the call.
	Chaincode string `json:"chaincode"`
	Function  string `json:"function"`
	// Args are the chaincode arguments.
	Args []string `json:"args,omitempty"`
	// Transient carries confidential inputs that reach the chaincode
	// without entering the transaction (Fabric's transient map).
	Transient map[string][]byte `json:"transient,omitempty"`
	// Endorsers names the endorsement set; nil with EndorsersSet false
	// selects the gateway's default set (every connected peer).
	Endorsers []string `json:"endorsers,omitempty"`
	// EndorsersSet marks an explicit (possibly empty) endorser choice,
	// mirroring the WithEndorsers() call-option semantics: explicitly
	// requesting zero endorsers fails rather than falling back.
	EndorsersSet bool `json:"endorsers_set,omitempty"`
}

// NewInvoke builds an InvokeRequest for a chaincode function call.
func NewInvoke(chaincode, function string, args ...string) *InvokeRequest {
	return &InvokeRequest{Chaincode: chaincode, Function: function, Args: args}
}

// OnChannel selects a channel; returns the request for chaining.
func (r *InvokeRequest) OnChannel(channel string) *InvokeRequest {
	r.Channel = channel
	return r
}

// WithTransient attaches the transient map; returns the request for
// chaining.
func (r *InvokeRequest) WithTransient(transient map[string][]byte) *InvokeRequest {
	r.Transient = transient
	return r
}

// WithEndorsers restricts the endorsement set to the named peers;
// returns the request for chaining. Calling it with no names explicitly
// requests zero endorsers (which fails, as with the call option).
func (r *InvokeRequest) WithEndorsers(names ...string) *InvokeRequest {
	r.Endorsers = names
	r.EndorsersSet = true
	return r
}

// SubmitResult is the final outcome of a submitted transaction,
// assembled from its commit-status event. gateway.Result aliases it.
type SubmitResult struct {
	TxID string `json:"tx_id"`
	// Payload is the chaincode's response payload in plaintext (from
	// PR_Ori under defense Feature 2).
	Payload []byte `json:"payload,omitempty"`
	// Code is the final validation code the commit peer recorded.
	Code ledger.ValidationCode `json:"code"`
	// Detail explains non-VALID codes.
	Detail string `json:"detail,omitempty"`
	// BlockNum is the block the transaction landed in.
	BlockNum uint64 `json:"block_num"`
	// Event is the chaincode event of a VALID transaction, if any.
	Event *ledger.ChaincodeEvent `json:"event,omitempty"`
	// MissingCollections lists collections whose original private data
	// the commit peer had not obtained at commit time.
	MissingCollections []string `json:"missing_collections,omitempty"`
	// CommitWait is the submit→commit-notified latency.
	CommitWait time.Duration `json:"commit_wait,omitempty"`
}

// AsEndorsers converts a slice of any concrete endorser type (e.g.
// []*peer.Peer) to []Endorser — Go slices are not covariant, so call
// sites spreading a concrete slice into a variadic interface parameter
// need the explicit conversion.
func AsEndorsers[T Endorser](in []T) []Endorser {
	out := make([]Endorser, len(in))
	for i, e := range in {
		out[i] = e
	}
	return out
}

// AsPeers converts a slice of any concrete peer type to []Peer.
func AsPeers[T Peer](in []T) []Peer {
	out := make([]Peer, len(in))
	for i, p := range in {
		out[i] = p
	}
	return out
}

// Names returns the node names of the given endorsers, in order — the
// form InvokeRequest.Endorsers carries.
func Names[T Endorser](in []T) []string {
	out := make([]string, len(in))
	for i, e := range in {
		out[i] = e.Name()
	}
	return out
}

// TryTxStatus drains buffered events from the stream without blocking
// and returns the status event of txID if already buffered. Events for
// other transactions are discarded — commit waiters hold a dedicated
// stream.
func TryTxStatus(s Stream, txID string) *deliver.TxStatusEvent {
	for {
		select {
		case ev, ok := <-s.Events():
			if !ok {
				return nil
			}
			if st, isStatus := ev.(*deliver.TxStatusEvent); isStatus && st.TxID == txID {
				return st
			}
		default:
			return nil
		}
	}
}

// WaitTxStatus consumes the stream until the status event of txID
// arrives, the stream ends, or the context expires.
func WaitTxStatus(ctx context.Context, s Stream, txID string) (*deliver.TxStatusEvent, error) {
	for {
		select {
		case ev, ok := <-s.Events():
			if !ok {
				if err := s.Err(); err != nil {
					return nil, err
				}
				return nil, deliver.ErrClosed
			}
			if st, isStatus := ev.(*deliver.TxStatusEvent); isStatus && st.TxID == txID {
				return st, nil
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
