// Package service defines the transport-agnostic component APIs of the
// reproduction: the endorse, order, deliver and gateway surfaces every
// node exposes. Each interface has (at least) two implementations — the
// in-process one (*peer.Peer, *orderer.Service, *gateway.Gateway) used
// by tests and single-process deployments, and a wire client
// (internal/wire) speaking the framed TCP protocol to a served form of
// the same component in another process. Callers written against these
// interfaces run unchanged in either deployment; this is the
// local-vs-remote split of teranode's validator (SNIPPETS.md §1).
//
// The request/response structs (InvokeRequest, SubmitResult) are the
// single client-facing call surface: the same structs are passed to a
// local gateway and marshaled onto the wire, so there is no separate
// "remote" API to drift out of sync.
package service

import (
	"context"

	"repro/internal/deliver"
	"repro/internal/ledger"
)

// Endorser simulates proposals and returns signed proposal responses —
// the peer's endorsement surface (paper Fig. 4 steps 2–5).
type Endorser interface {
	// Name returns the node name, e.g. "peer0.org1".
	Name() string
	// Org returns the endorser's organization (MSP ID).
	Org() string
	// Endorse simulates the proposal against current state and returns
	// the signed response. The context bounds the call; a remote
	// implementation propagates its deadline to the serving peer.
	Endorse(ctx context.Context, prop *ledger.Proposal) (*ledger.ProposalResponse, error)
}

// Stream is one consumer's ordered event stream from a deliver service:
// block events and per-transaction commit-status events. The channel
// closes when the stream ends; Err reports why. *deliver.Subscription
// satisfies Stream directly; the wire client reconstructs the same
// shape from event frames.
type Stream interface {
	Events() <-chan deliver.Event
	Err() error
	Close()
}

// Deliverer is the peer's block/commit-status delivery surface.
type Deliverer interface {
	// SubscribeLive streams events for blocks committed after the call.
	SubscribeLive() Stream
	// SubscribeFrom replays events from block number `from` and then
	// follows live commits (checkpointed replay).
	SubscribeFrom(from uint64) (Stream, error)
}

// Peer is the full client-facing surface of one peer: endorsement plus
// delivery plus channel identification.
type Peer interface {
	Endorser
	Deliverer
	// ChannelName returns the channel the peer serves.
	ChannelName() string
}

// Orderer is the ordering service surface a gateway depends on.
type Orderer interface {
	// Order submits an assembled transaction and returns once the
	// ordering service has accepted it into a cut block (or the context
	// expires). Acceptance does not imply validity — the commit status
	// arrives through the deliver stream.
	Order(ctx context.Context, tx *ledger.Transaction) error
	// InPending reports whether the transaction sits in the current
	// partial batch.
	InPending(txID string) bool
	// FlushTx cuts the partial batch if it still holds the transaction.
	FlushTx(txID string)
}

// Commit is a pending commit-status handle returned by SubmitAsync.
// Every handle must be driven to a terminal Status or Closed.
type Commit interface {
	// TxID returns the pending transaction's ID.
	TxID() string
	// Status blocks until the transaction's final commit status is
	// known, honoring ctx. Context-derived errors are non-sticky: a
	// later call with a fresh context picks the wait back up.
	Status(ctx context.Context) (*SubmitResult, error)
	// Close releases the handle's resources. Idempotent.
	Close()
}

// Gateway is the client-facing transaction API: the same three calls,
// taking the same request structs, whether the gateway runs in-process
// or behind the wire protocol.
type Gateway interface {
	// Evaluate runs a query against a single endorser without ordering.
	Evaluate(ctx context.Context, req *InvokeRequest) ([]byte, error)
	// Submit drives endorse → order → commit-wait and returns the final
	// validation outcome.
	Submit(ctx context.Context, req *InvokeRequest) (*SubmitResult, error)
	// SubmitAsync endorses and orders, returning as soon as the orderer
	// accepted the transaction; the final status is collected through
	// the returned Commit.
	SubmitAsync(ctx context.Context, req *InvokeRequest) (Commit, error)
}
