// Package node bootstraps one multi-process deployment role: a peer,
// the ordering service, or a gateway, each running in its own OS
// process with a wire server on a TCP listener. cmd/pdcnet's role
// subcommands and the cluster integration tests are thin shells around
// StartPeer/StartOrderer/StartGateway.
//
// Every process loads the same topology (netconfig.Config) and identity
// material (netconfig.Material), so they reconstruct an identical
// channel configuration — same org CAs, same endorsement policy — and
// verify each other's signatures without sharing memory.
//
// Cross-process glue, per role:
//
//   - A peer process joins wire-backed gossip members (remoteMember)
//     for every other peer into its otherwise single-member gossip
//     network, so private data dissemination at endorsement time and
//     reconciliation pulls at commit time travel over TCP. It follows
//     the orderer's block stream (order.blocks) from its own chain
//     height and commits each block locally — the multi-process stand-in
//     for the in-process orderer delivering straight into CommitBlock.
//   - The orderer process runs consensus only; no peers are registered
//     with it, so Order returns at consensus and peers catch up through
//     their block streams.
//   - A gateway process endorses through wire PeerClients and orders
//     through a wire OrdererClient; its commit wait rides a deliver
//     stream from its commit peer's process.
package node

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/deliver"
	"repro/internal/gateway"
	"repro/internal/gossip"
	"repro/internal/identity"
	"repro/internal/netconfig"
	"repro/internal/orderer"
	"repro/internal/peer"
	"repro/internal/rwset"
	"repro/internal/service"
	"repro/internal/wire"
)

// DialRetryTimeout bounds how long a starting role waits for its
// dependencies' listeners to come up.
const DialRetryTimeout = 10 * time.Second

// reconcileInterval paces a peer process's reconciler ticks.
const reconcileInterval = 200 * time.Millisecond

// Options configure one role process.
type Options struct {
	// Config is the shared topology document.
	Config *netconfig.Config
	// Material is the shared identity root (see netconfig.Material).
	Material *netconfig.Material
	// Name is the node's identity name: "peer0.org1", "orderer0", or a
	// client identity ("client0.org1") for a gateway.
	Name string
	// Listen is the wire server's TCP listen address ("127.0.0.1:0"
	// picks a free port; Node.Addr reports the bound address).
	Listen string
	// OrdererAddr is the orderer process's address (peers, gateways).
	OrdererAddr string
	// PeerAddrs maps peer node names to their addresses. A peer ignores
	// its own entry; a gateway connects to every entry.
	PeerAddrs map[string]string
	// TLS enables pinned-key TLS on the server and on every dial.
	TLS bool
	// Codec selects the wire payload encoding for every connection this
	// role dials (servers always mirror the caller's codec). Empty
	// selects the default (binary).
	Codec wire.Codec
	// SnapshotFrom names the peer (a key of PeerAddrs) an empty joining
	// peer fetches a bootstrap snapshot from when the orderer's retained
	// log no longer reaches back to genesis (orderer.ErrCompacted).
	// Empty picks the first other peer in sorted-name order.
	SnapshotFrom string
	// Log, when non-nil, receives one-line progress notes.
	Log io.Writer
}

// Node is one running role.
type Node struct {
	Role string
	// Peer is set for peer roles — the in-process component behind the
	// wire server (tests inspect its ledger directly).
	Peer *peer.Peer
	// Orderer is set for orderer roles.
	Orderer *orderer.Service
	// Gateway is set for gateway roles.
	Gateway *gateway.Gateway

	opts    Options
	server  *wire.Server
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	mu      sync.Mutex
	closers []func()
	closed  bool
	// peerClients maps other peers' names to their dialed wire clients
	// (peer roles only) — the snapshot-bootstrap path picks one of these.
	peerClients map[string]*wire.PeerClient
}

// Addr returns the wire server's bound listen address.
func (n *Node) Addr() string { return n.server.Addr().String() }

// Close tears the role down: background loops stop, the wire server
// closes, and every dialed connection is released. Idempotent.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	closers := n.closers
	n.closers = nil
	n.mu.Unlock()
	n.cancel()
	n.server.Close()
	n.wg.Wait()
	for _, c := range closers {
		c()
	}
	if n.Orderer != nil {
		n.Orderer.Stop()
	}
}

func (n *Node) onClose(f func()) {
	n.mu.Lock()
	n.closers = append(n.closers, f)
	n.mu.Unlock()
}

func (n *Node) logf(format string, args ...any) {
	if n.opts.Log != nil {
		fmt.Fprintf(n.opts.Log, format+"\n", args...)
	}
}

// newNode builds the shared part of every role: identity, wire server,
// lifetime context.
func newNode(role string, opts Options) (*Node, *identity.Identity, context.Context, error) {
	if opts.Config == nil || opts.Material == nil {
		return nil, nil, nil, fmt.Errorf("node: %s needs Config and Material", role)
	}
	id, err := opts.Material.Identity(opts.Name)
	if err != nil {
		return nil, nil, nil, err
	}
	sopts := wire.ServerOptions{}
	if opts.TLS {
		sopts.Identity = id
	}
	srv, err := wire.NewServer(sopts)
	if err != nil {
		return nil, nil, nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := &Node{Role: role, opts: opts, server: srv, cancel: cancel}
	return n, id, ctx, nil
}

// clientOptions builds the dial options for reaching serverName,
// pinning its key when TLS is on.
func (n *Node) clientOptions(id *identity.Identity, serverName string) (wire.ClientOptions, error) {
	copts := wire.ClientOptions{DialTimeout: 2 * time.Second, Codec: n.opts.Codec}
	if n.opts.TLS {
		key, err := n.opts.Material.ServerKey(serverName)
		if err != nil {
			return copts, err
		}
		copts.Identity = id
		copts.ServerKey = key
	}
	return copts, nil
}

// dialRetry dials until the listener answers or the timeout elapses —
// roles of one cluster start concurrently, so the first dials race the
// target's Listen.
func dialRetry(ctx context.Context, addr string, copts wire.ClientOptions) (*wire.Client, error) {
	deadline := time.Now().Add(DialRetryTimeout)
	for {
		c, err := wire.Dial(addr, copts)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("node: dial %s: %w", addr, err)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// StartOrderer runs the ordering service behind a wire server. No peers
// register with it: blocks reach peer processes through their
// order.blocks streams.
func StartOrderer(opts Options) (*Node, error) {
	n, _, _, err := newNode("orderer", opts)
	if err != nil {
		return nil, err
	}
	cfg := opts.Config
	n.Orderer = orderer.New(orderer.Config{
		OrdererCount: cfg.OrdererCount,
		BatchSize:    cfg.BatchSize,
		RetainBlocks: cfg.RetainBlocks,
		Seed:         cfg.Seed,
	})
	wire.RegisterOrderer(n.server, n.Orderer)
	if err := n.server.Listen(opts.Listen); err != nil {
		n.Orderer.Stop()
		return nil, err
	}
	n.logf("orderer %s listening on %s", opts.Name, n.Addr())
	return n, nil
}

// StartPeer runs one peer behind a wire server: chaincodes installed
// from the topology, remote gossip members joined for every other peer,
// a block-follow loop committing the orderer's stream, and a reconciler
// ticker recovering missing private data over the wire.
func StartPeer(opts Options) (*Node, error) {
	n, id, ctx, err := newNode("peer", opts)
	if err != nil {
		return nil, err
	}
	gnet := gossip.NewNetwork()
	p, err := peer.New(peer.Config{
		Identity: id,
		Channel:  opts.Material.ChannelConfig(),
		Gossip:   gnet,
		Security: opts.Config.SecurityConfig(),
	})
	if err != nil {
		return nil, err
	}
	n.Peer = p
	// Surface the process's transport counters through the peer's
	// metrics endpoint.
	p.RegisterMetricsSource(wire.MetricsSnapshot)
	if err := installChaincodes(opts.Config, p); err != nil {
		return nil, err
	}
	wire.RegisterPeer(n.server, p)
	if err := n.server.Listen(opts.Listen); err != nil {
		return nil, err
	}

	// Join a wire-backed gossip member for every other peer, so
	// dissemination pushes and reconciliation pulls cross process
	// boundaries. Deterministic order keeps fan-out selection stable.
	for _, name := range sortedNames(opts.PeerAddrs) {
		if name == opts.Name {
			continue
		}
		copts, err := n.clientOptions(id, name)
		if err != nil {
			n.Close()
			return nil, err
		}
		c, err := dialRetry(ctx, opts.PeerAddrs[name], copts)
		if err != nil {
			n.Close()
			return nil, err
		}
		pc, err := wire.NewPeerClient(c)
		if err != nil {
			c.Close()
			n.Close()
			return nil, err
		}
		n.onClose(pc.Close)
		if n.peerClients == nil {
			n.peerClients = make(map[string]*wire.PeerClient)
		}
		n.peerClients[name] = pc
		gnet.Join(&remoteMember{pc: pc})
		n.logf("peer %s gossips with %s at %s", opts.Name, name, opts.PeerAddrs[name])
	}

	if opts.OrdererAddr != "" {
		copts, err := n.clientOptions(id, netconfig.OrdererNode)
		if err != nil {
			n.Close()
			return nil, err
		}
		n.wg.Add(1)
		go n.followBlocks(ctx, copts)
	}
	n.wg.Add(1)
	go n.reconcileLoop(ctx)
	n.logf("peer %s listening on %s", opts.Name, n.Addr())
	return n, nil
}

// StartGateway runs a gateway behind a wire server, endorsing through
// every peer in PeerAddrs and ordering through OrdererAddr. The commit
// peer defaults to the gateway identity's own org (gateway.Connect's
// rule), so commit waits ride a same-org deliver stream.
func StartGateway(opts Options) (*Node, error) {
	n, id, ctx, err := newNode("gateway", opts)
	if err != nil {
		return nil, err
	}
	if opts.OrdererAddr == "" {
		return nil, fmt.Errorf("node: gateway needs OrdererAddr")
	}
	ocopts, err := n.clientOptions(id, netconfig.OrdererNode)
	if err != nil {
		return nil, err
	}
	oc, err := dialRetry(ctx, opts.OrdererAddr, ocopts)
	if err != nil {
		return nil, err
	}
	ordClient := wire.NewOrdererClient(oc)
	n.onClose(ordClient.Close)

	var peers []service.Peer
	for _, name := range sortedNames(opts.PeerAddrs) {
		copts, err := n.clientOptions(id, name)
		if err != nil {
			n.Close()
			return nil, err
		}
		c, err := dialRetry(ctx, opts.PeerAddrs[name], copts)
		if err != nil {
			n.Close()
			return nil, err
		}
		pc, err := wire.NewPeerClient(c)
		if err != nil {
			c.Close()
			n.Close()
			return nil, err
		}
		n.onClose(pc.Close)
		peers = append(peers, pc)
	}
	if len(peers) == 0 {
		n.Close()
		return nil, fmt.Errorf("node: gateway needs at least one peer address")
	}
	n.Gateway = gateway.Connect(id, gateway.Options{
		Verifier: opts.Material.ChannelConfig().Verifier(),
		Orderer:  ordClient,
		Security: opts.Config.SecurityConfig(),
	}, peers...)
	wire.RegisterGateway(n.server, n.Gateway)
	if err := n.server.Listen(opts.Listen); err != nil {
		n.Close()
		return nil, err
	}
	n.logf("gateway %s listening on %s (%d peers)", opts.Name, n.Addr(), len(peers))
	return n, nil
}

// followBlocks streams ordered blocks from the peer's current height
// and commits them, redialing when the stream or connection drops. When
// the orderer's retained log has been compacted past the peer's height,
// an empty peer bootstraps from another peer's snapshot and resumes the
// stream from the installed height — the O(state) cold-join path.
func (n *Node) followBlocks(ctx context.Context, copts wire.ClientOptions) {
	defer n.wg.Done()
	for ctx.Err() == nil {
		c, err := dialRetry(ctx, n.opts.OrdererAddr, copts)
		if err != nil {
			return
		}
		oc := wire.NewOrdererClient(c)
		stream, err := oc.Blocks(ctx, n.Peer.Ledger().Height())
		if err != nil {
			oc.Close()
			if errors.Is(err, orderer.ErrCompacted) {
				if n.Peer.Ledger().Height() == 0 {
					if berr := n.bootstrapFromSnapshot(ctx); berr != nil {
						n.logf("peer %s: snapshot bootstrap: %v", n.opts.Name, berr)
					} else {
						continue // resubscribe from the installed height
					}
				} else {
					// A non-empty peer behind the retained window cannot be
					// healed in place; snapshot install requires a fresh peer.
					n.logf("peer %s: orderer log compacted past height %d; restart empty to snapshot-join",
						n.opts.Name, n.Peer.Ledger().Height())
				}
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(100 * time.Millisecond):
			}
			continue
		}
		n.pumpBlocks(ctx, stream)
		stream.Close()
		oc.Close()
	}
}

// bootstrapFromSnapshot fetches a snapshot artifact from another peer
// process over the wire (peer.snapshot.meta / peer.snapshot.chunks) and
// installs it, bringing an empty peer to the source's commit height
// without replaying the chain. The caller resumes the block stream from
// the installed height afterwards.
func (n *Node) bootstrapFromSnapshot(ctx context.Context) error {
	source := n.opts.SnapshotFrom
	if source == "" {
		for _, name := range sortedNames(n.opts.PeerAddrs) {
			if name != n.opts.Name {
				source = name
				break
			}
		}
	}
	pc, ok := n.peerClients[source]
	if !ok {
		return fmt.Errorf("node: no peer client for snapshot source %q", source)
	}
	parent, err := os.MkdirTemp("", "pdc-snapshot-join-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(parent)
	dir := filepath.Join(parent, "snap")
	m, err := pc.FetchSnapshot(ctx, dir)
	if err != nil {
		return fmt.Errorf("node: fetch snapshot from %s: %w", source, err)
	}
	if err := n.Peer.InstallSnapshot(dir); err != nil {
		return fmt.Errorf("node: install snapshot from %s: %w", source, err)
	}
	n.logf("peer %s bootstrapped from snapshot of %s at height %d (%d chunks)",
		n.opts.Name, source, m.Height, len(m.Chunks))
	return nil
}

// pumpBlocks commits one stream's blocks until it ends or ctx cancels.
func (n *Node) pumpBlocks(ctx context.Context, stream service.Stream) {
	for {
		select {
		case ev, ok := <-stream.Events():
			if !ok {
				return
			}
			be, isBlock := ev.(*deliver.BlockEvent)
			if !isBlock || be.Block == nil {
				continue
			}
			if be.Block.Header.Number < n.Peer.Ledger().Height() {
				continue // replayed below our height after a redial
			}
			if err := n.Peer.CommitBlock(be.Block); err != nil {
				n.logf("peer %s: commit block %d: %v", n.opts.Name, be.Block.Header.Number, err)
			}
		case <-ctx.Done():
			return
		}
	}
}

// reconcileLoop ticks the peer's reconciler so private data missed at
// commit time is pulled from remote members over the wire.
func (n *Node) reconcileLoop(ctx context.Context) {
	defer n.wg.Done()
	t := time.NewTicker(reconcileInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			n.Peer.TickReconcile()
		case <-ctx.Done():
			return
		}
	}
}

// installChaincodes approves and installs every configured chaincode on
// one peer — the per-process half of Network.DeployChaincode.
func installChaincodes(cfg *netconfig.Config, p *peer.Peer) error {
	for i := range cfg.Chaincodes {
		cc := &cfg.Chaincodes[i]
		impl, err := cc.Implementation()
		if err != nil {
			return err
		}
		if err := p.ApproveDefinition(cc.Definition()); err != nil {
			return err
		}
		p.InstallChaincode(cc.Name, impl)
	}
	return nil
}

// sortedNames returns the map's keys in deterministic order.
func sortedNames(m map[string]string) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// remoteMember adapts a wire PeerClient onto the gossip.Member surface,
// making a peer in another process a first-class gossip participant:
// Disseminate pushes travel as peer.pvtpush calls, reconciliation pulls
// as peer.pvt calls. The interface is synchronous and error-free, so
// failures degrade to "member had nothing" — exactly how the in-process
// network treats a dropped delivery, and what the reconciler retries
// around.
type remoteMember struct {
	pc *wire.PeerClient
}

var _ gossip.Member = (*remoteMember)(nil)

func (r *remoteMember) GossipName() string { return r.pc.Name() }
func (r *remoteMember) GossipOrg() string  { return r.pc.Org() }

func (r *remoteMember) ReceivePrivateData(set *rwset.TxPvtRWSet) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	r.pc.PushPrivateData(ctx, set)
}

func (r *remoteMember) ServePrivateData(txID, collection string) *rwset.CollPvtRWSet {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	set, err := r.pc.FetchPrivateData(ctx, txID, collection)
	if err != nil {
		return nil
	}
	return set
}

// ParsePeerAddrs parses the "name=addr,name=addr" list the role
// subcommands and PDC_WIRE_PEERS env variable use.
func ParsePeerAddrs(s string) (map[string]string, error) {
	out := make(map[string]string)
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("node: bad peer address %q (want name=addr)", part)
		}
		out[name] = addr
	}
	return out, nil
}

// FormatPeerAddrs is ParsePeerAddrs's inverse.
func FormatPeerAddrs(m map[string]string) string {
	parts := make([]string, 0, len(m))
	for _, name := range sortedNames(m) {
		parts = append(parts, name+"="+m[name])
	}
	return strings.Join(parts, ",")
}
