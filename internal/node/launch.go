package node

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/netconfig"
	"repro/internal/wire"
)

// proc is one spawned role process.
type proc struct {
	name   string
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	stdout io.Reader
	addr   string
}

// stop asks the child to exit by closing its stdin, escalating to kill.
func (p *proc) stop() {
	if p.stdin != nil {
		p.stdin.Close()
	}
	done := make(chan struct{})
	go func() { p.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		p.cmd.Process.Kill()
		<-done
	}
}

func (p *proc) waitReady() error {
	addr, err := WaitReady(p.stdout)
	if err != nil {
		return fmt.Errorf("%s: %w", p.name, err)
	}
	p.addr = addr
	return nil
}

// LaunchOptions configure LaunchCluster.
type LaunchOptions struct {
	// Self is the binary to re-execute for each role; it must call
	// RunRoleFromEnv before anything else (pdcnet's main and the
	// cluster test's TestMain both do). Defaults to os.Executable().
	Self string
	// Dir is where material.json and netconfig.json are written; the
	// caller owns cleanup. Required.
	Dir string
	// TLS enables pinned-key TLS between every process.
	TLS bool
	// Codec selects the wire payload encoding every role (and every
	// cluster dial) uses; empty selects the default (binary).
	Codec wire.Codec
	// Stderr, when non-nil, receives every child's stderr.
	Stderr io.Writer
	// SkipPeers names topology peers NOT spawned at launch. They keep a
	// reserved address and are withheld from the running roles' peer
	// lists (so startup dials never block on them); start one later with
	// JoinPeer — the late-joiner path.
	SkipPeers []string
}

// Cluster is a running multi-process deployment: one orderer, every
// configured peer, and one gateway, each a separate OS process.
type Cluster struct {
	Config      *netconfig.Config
	Material    *netconfig.Material
	GatewayName string
	OrdererAddr string
	GatewayAddr string
	PeerAddrs   map[string]string
	procs       []*proc
	tls         bool
	codec       wire.Codec

	// Spawn context kept for JoinPeer.
	self         string
	configPath   string
	materialPath string
	stderr       io.Writer
	skipped      map[string]string
}

// DialGateway opens a wire client to the cluster's gateway process.
func (cl *Cluster) DialGateway() (*wire.GatewayClient, error) {
	c, err := cl.dial(cl.GatewayAddr, cl.GatewayName)
	if err != nil {
		return nil, err
	}
	return wire.NewGatewayClient(c), nil
}

// DialPeer opens a wire client to one of the cluster's peer processes.
func (cl *Cluster) DialPeer(name string) (*wire.PeerClient, error) {
	addr, ok := cl.PeerAddrs[name]
	if !ok {
		return nil, fmt.Errorf("node: no peer %q in cluster", name)
	}
	c, err := cl.dial(addr, name)
	if err != nil {
		return nil, err
	}
	return wire.NewPeerClient(c)
}

// DialOrderer opens a wire client to the cluster's orderer process.
func (cl *Cluster) DialOrderer() (*wire.OrdererClient, error) {
	c, err := cl.dial(cl.OrdererAddr, netconfig.OrdererNode)
	if err != nil {
		return nil, err
	}
	return wire.NewOrdererClient(c), nil
}

// PeerNames returns the cluster's peer node names, sorted.
func (cl *Cluster) PeerNames() []string { return sortedNames(cl.PeerAddrs) }

func (cl *Cluster) dial(addr, serverName string) (*wire.Client, error) {
	copts := wire.ClientOptions{Codec: cl.codec}
	if cl.tls {
		id, err := cl.Material.Identity(cl.GatewayName)
		if err != nil {
			return nil, err
		}
		key, err := cl.Material.ServerKey(serverName)
		if err != nil {
			return nil, err
		}
		copts.Identity, copts.ServerKey = id, key
	}
	return wire.Dial(addr, copts)
}

// LaunchCluster writes config+material under opts.Dir, reserves
// loopback ports (explicit cfg.Wire addresses win), and spawns every
// role of the topology, returning once all printed READY.
func LaunchCluster(cfg *netconfig.Config, opts LaunchOptions) (*Cluster, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("node: LaunchCluster needs a Dir")
	}
	self := opts.Self
	if self == "" {
		var err error
		self, err = os.Executable()
		if err != nil {
			return nil, err
		}
	}
	material, err := cfg.GenerateMaterial()
	if err != nil {
		return nil, err
	}
	materialPath := filepath.Join(opts.Dir, "material.json")
	if err := material.Save(materialPath); err != nil {
		return nil, err
	}
	cfgData, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return nil, err
	}
	configPath := filepath.Join(opts.Dir, "netconfig.json")
	if err := os.WriteFile(configPath, cfgData, 0o644); err != nil {
		return nil, err
	}

	peersPerOrg := cfg.PeersPerOrg
	if peersPerOrg <= 0 {
		peersPerOrg = 1
	}
	var peerNames []string
	for _, org := range cfg.Orgs {
		for i := 0; i < peersPerOrg; i++ {
			peerNames = append(peerNames, fmt.Sprintf("peer%d.%s", i, org))
		}
	}
	sort.Strings(peerNames)

	ports, err := FreePorts(len(peerNames) + 2)
	if err != nil {
		return nil, err
	}
	ordererAddr, gatewayAddr := ports[len(ports)-2], ports[len(ports)-1]
	peerAddrs := make(map[string]string, len(peerNames))
	for i, name := range peerNames {
		peerAddrs[name] = ports[i]
	}
	tlsOn := opts.TLS
	if w := cfg.Wire; w != nil {
		if w.Orderer != "" {
			ordererAddr = w.Orderer
		}
		if w.Gateway != "" {
			gatewayAddr = w.Gateway
		}
		for name, addr := range w.Peers {
			peerAddrs[name] = addr
		}
		if w.TLS {
			tlsOn = true
		}
	}

	// Hold the skipped peers back: reserve their addresses for a later
	// JoinPeer, but keep them out of every running role's peer list so
	// startup dials never wait on a process that does not exist.
	skipped := make(map[string]string, len(opts.SkipPeers))
	for _, name := range opts.SkipPeers {
		addr, ok := peerAddrs[name]
		if !ok {
			return nil, fmt.Errorf("node: SkipPeers names unknown peer %q", name)
		}
		skipped[name] = addr
		delete(peerAddrs, name)
	}
	launchNames := make([]string, 0, len(peerNames))
	for _, name := range peerNames {
		if _, skip := skipped[name]; !skip {
			launchNames = append(launchNames, name)
		}
	}

	cl := &Cluster{
		Config:       cfg,
		Material:     material,
		GatewayName:  "client0." + cfg.Orgs[0],
		OrdererAddr:  ordererAddr,
		GatewayAddr:  gatewayAddr,
		PeerAddrs:    peerAddrs,
		tls:          tlsOn,
		codec:        opts.Codec,
		self:         self,
		configPath:   configPath,
		materialPath: materialPath,
		stderr:       opts.Stderr,
		skipped:      skipped,
	}
	fail := func(err error) (*Cluster, error) {
		cl.Stop()
		return nil, err
	}
	if err := cl.spawn("orderer", netconfig.OrdererNode, ordererAddr, peerAddrs, ""); err != nil {
		return fail(err)
	}
	for _, name := range launchNames {
		if err := cl.spawn("peer", name, peerAddrs[name], peerAddrs, ""); err != nil {
			return fail(err)
		}
	}
	if err := cl.spawn("gateway", cl.GatewayName, gatewayAddr, peerAddrs, ""); err != nil {
		return fail(err)
	}
	// Only now wait for READY: peers block on dialing each other's
	// gossip listeners during startup, so all processes must exist
	// before any is waited on.
	for _, p := range cl.procs {
		if err := p.waitReady(); err != nil {
			return fail(err)
		}
	}
	return cl, nil
}

// spawn starts one role process with the cluster's stored launch
// context and appends it to the teardown list (READY not yet awaited).
func (cl *Cluster) spawn(role, name, listen string, peerAddrs map[string]string, snapshotFrom string) error {
	env := map[string]string{
		EnvRole:     role,
		EnvConfig:   cl.configPath,
		EnvMaterial: cl.materialPath,
		EnvName:     name,
		EnvListen:   listen,
		EnvOrderer:  cl.OrdererAddr,
		EnvPeers:    FormatPeerAddrs(peerAddrs),
	}
	if cl.tls {
		env[EnvTLS] = "1"
	}
	if cl.codec != "" {
		env[EnvCodec] = string(cl.codec)
	}
	if snapshotFrom != "" {
		env[EnvSnapshotFrom] = snapshotFrom
	}
	cmd := exec.Command(cl.self)
	cmd.Env = os.Environ()
	for k, v := range env {
		cmd.Env = append(cmd.Env, k+"="+v)
	}
	cmd.Stderr = cl.stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("node: spawn %s: %w", name, err)
	}
	cl.procs = append(cl.procs, &proc{name: name, cmd: cmd, stdin: stdin, stdout: stdout})
	return nil
}

// JoinPeer starts a peer that was held back with SkipPeers, wired to
// every running peer. snapshotFrom, when non-empty, names the peer the
// joiner bootstraps from if the orderer's log is compacted past its
// height (empty picks the first running peer in sorted order). On
// return the peer is READY and appears in PeerAddrs / DialPeer.
func (cl *Cluster) JoinPeer(name, snapshotFrom string) error {
	addr, ok := cl.skipped[name]
	if !ok {
		return fmt.Errorf("node: JoinPeer: %q was not held back at launch", name)
	}
	peers := make(map[string]string, len(cl.PeerAddrs)+1)
	for n, a := range cl.PeerAddrs {
		peers[n] = a
	}
	peers[name] = addr
	if err := cl.spawn("peer", name, addr, peers, snapshotFrom); err != nil {
		return err
	}
	if err := cl.procs[len(cl.procs)-1].waitReady(); err != nil {
		return err
	}
	delete(cl.skipped, name)
	cl.PeerAddrs[name] = addr
	return nil
}

// Stop tears the cluster down, gateway first (it holds connections into
// the other processes).
func (cl *Cluster) Stop() {
	for i := len(cl.procs) - 1; i >= 0; i-- {
		cl.procs[i].stop()
	}
	cl.procs = nil
}

// TLS reports whether the cluster runs with pinned-key TLS.
func (cl *Cluster) TLS() bool { return cl.tls }
