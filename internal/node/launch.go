package node

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/netconfig"
	"repro/internal/wire"
)

// proc is one spawned role process.
type proc struct {
	name   string
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	stdout io.Reader
	addr   string
}

// stop asks the child to exit by closing its stdin, escalating to kill.
func (p *proc) stop() {
	if p.stdin != nil {
		p.stdin.Close()
	}
	done := make(chan struct{})
	go func() { p.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		p.cmd.Process.Kill()
		<-done
	}
}

func (p *proc) waitReady() error {
	addr, err := WaitReady(p.stdout)
	if err != nil {
		return fmt.Errorf("%s: %w", p.name, err)
	}
	p.addr = addr
	return nil
}

// LaunchOptions configure LaunchCluster.
type LaunchOptions struct {
	// Self is the binary to re-execute for each role; it must call
	// RunRoleFromEnv before anything else (pdcnet's main and the
	// cluster test's TestMain both do). Defaults to os.Executable().
	Self string
	// Dir is where material.json and netconfig.json are written; the
	// caller owns cleanup. Required.
	Dir string
	// TLS enables pinned-key TLS between every process.
	TLS bool
	// Codec selects the wire payload encoding every role (and every
	// cluster dial) uses; empty selects the default (binary).
	Codec wire.Codec
	// Stderr, when non-nil, receives every child's stderr.
	Stderr io.Writer
}

// Cluster is a running multi-process deployment: one orderer, every
// configured peer, and one gateway, each a separate OS process.
type Cluster struct {
	Config      *netconfig.Config
	Material    *netconfig.Material
	GatewayName string
	OrdererAddr string
	GatewayAddr string
	PeerAddrs   map[string]string
	procs       []*proc
	tls         bool
	codec       wire.Codec
}

// DialGateway opens a wire client to the cluster's gateway process.
func (cl *Cluster) DialGateway() (*wire.GatewayClient, error) {
	c, err := cl.dial(cl.GatewayAddr, cl.GatewayName)
	if err != nil {
		return nil, err
	}
	return wire.NewGatewayClient(c), nil
}

// DialPeer opens a wire client to one of the cluster's peer processes.
func (cl *Cluster) DialPeer(name string) (*wire.PeerClient, error) {
	addr, ok := cl.PeerAddrs[name]
	if !ok {
		return nil, fmt.Errorf("node: no peer %q in cluster", name)
	}
	c, err := cl.dial(addr, name)
	if err != nil {
		return nil, err
	}
	return wire.NewPeerClient(c)
}

// PeerNames returns the cluster's peer node names, sorted.
func (cl *Cluster) PeerNames() []string { return sortedNames(cl.PeerAddrs) }

func (cl *Cluster) dial(addr, serverName string) (*wire.Client, error) {
	copts := wire.ClientOptions{Codec: cl.codec}
	if cl.tls {
		id, err := cl.Material.Identity(cl.GatewayName)
		if err != nil {
			return nil, err
		}
		key, err := cl.Material.ServerKey(serverName)
		if err != nil {
			return nil, err
		}
		copts.Identity, copts.ServerKey = id, key
	}
	return wire.Dial(addr, copts)
}

// LaunchCluster writes config+material under opts.Dir, reserves
// loopback ports (explicit cfg.Wire addresses win), and spawns every
// role of the topology, returning once all printed READY.
func LaunchCluster(cfg *netconfig.Config, opts LaunchOptions) (*Cluster, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("node: LaunchCluster needs a Dir")
	}
	self := opts.Self
	if self == "" {
		var err error
		self, err = os.Executable()
		if err != nil {
			return nil, err
		}
	}
	material, err := cfg.GenerateMaterial()
	if err != nil {
		return nil, err
	}
	materialPath := filepath.Join(opts.Dir, "material.json")
	if err := material.Save(materialPath); err != nil {
		return nil, err
	}
	cfgData, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return nil, err
	}
	configPath := filepath.Join(opts.Dir, "netconfig.json")
	if err := os.WriteFile(configPath, cfgData, 0o644); err != nil {
		return nil, err
	}

	peersPerOrg := cfg.PeersPerOrg
	if peersPerOrg <= 0 {
		peersPerOrg = 1
	}
	var peerNames []string
	for _, org := range cfg.Orgs {
		for i := 0; i < peersPerOrg; i++ {
			peerNames = append(peerNames, fmt.Sprintf("peer%d.%s", i, org))
		}
	}
	sort.Strings(peerNames)

	ports, err := FreePorts(len(peerNames) + 2)
	if err != nil {
		return nil, err
	}
	ordererAddr, gatewayAddr := ports[len(ports)-2], ports[len(ports)-1]
	peerAddrs := make(map[string]string, len(peerNames))
	for i, name := range peerNames {
		peerAddrs[name] = ports[i]
	}
	tlsOn := opts.TLS
	if w := cfg.Wire; w != nil {
		if w.Orderer != "" {
			ordererAddr = w.Orderer
		}
		if w.Gateway != "" {
			gatewayAddr = w.Gateway
		}
		for name, addr := range w.Peers {
			peerAddrs[name] = addr
		}
		if w.TLS {
			tlsOn = true
		}
	}

	cl := &Cluster{
		Config:      cfg,
		Material:    material,
		GatewayName: "client0." + cfg.Orgs[0],
		OrdererAddr: ordererAddr,
		GatewayAddr: gatewayAddr,
		PeerAddrs:   peerAddrs,
	}
	spawn := func(role, name, listen string) error {
		env := map[string]string{
			EnvRole:     role,
			EnvConfig:   configPath,
			EnvMaterial: materialPath,
			EnvName:     name,
			EnvListen:   listen,
			EnvOrderer:  ordererAddr,
			EnvPeers:    FormatPeerAddrs(peerAddrs),
		}
		if tlsOn {
			env[EnvTLS] = "1"
		}
		if opts.Codec != "" {
			env[EnvCodec] = string(opts.Codec)
		}
		cmd := exec.Command(self)
		cmd.Env = os.Environ()
		for k, v := range env {
			cmd.Env = append(cmd.Env, k+"="+v)
		}
		cmd.Stderr = opts.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("node: spawn %s: %w", name, err)
		}
		cl.procs = append(cl.procs, &proc{name: name, cmd: cmd, stdin: stdin, stdout: stdout})
		return nil
	}
	fail := func(err error) (*Cluster, error) {
		cl.Stop()
		return nil, err
	}
	if err := spawn("orderer", netconfig.OrdererNode, ordererAddr); err != nil {
		return fail(err)
	}
	for _, name := range peerNames {
		if err := spawn("peer", name, peerAddrs[name]); err != nil {
			return fail(err)
		}
	}
	if err := spawn("gateway", cl.GatewayName, gatewayAddr); err != nil {
		return fail(err)
	}
	// Only now wait for READY: peers block on dialing each other's
	// gossip listeners during startup, so all processes must exist
	// before any is waited on.
	for _, p := range cl.procs {
		if err := p.waitReady(); err != nil {
			return fail(err)
		}
	}
	cl.tls = tlsOn
	cl.codec = opts.Codec
	return cl, nil
}

// Stop tears the cluster down, gateway first (it holds connections into
// the other processes).
func (cl *Cluster) Stop() {
	for i := len(cl.procs) - 1; i >= 0; i-- {
		cl.procs[i].stop()
	}
	cl.procs = nil
}

// TLS reports whether the cluster runs with pinned-key TLS.
func (cl *Cluster) TLS() bool { return cl.tls }
