package node_test

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/ledger"
	"repro/internal/loadgen"
	"repro/internal/netconfig"
	"repro/internal/node"
	"repro/internal/pvtdata"
	"repro/internal/service"
)

// TestMain doubles as the cluster's role runner: LaunchCluster re-execs
// this test binary with PDC_WIRE_ROLE set, and the child becomes a
// peer/orderer/gateway process instead of running the tests.
func TestMain(m *testing.M) {
	if handled, err := node.RunRoleFromEnv(); handled {
		if err != nil {
			fmt.Fprintln(os.Stderr, "node role:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// clusterConfig is the test topology: three orgs, one peer each, the
// "asset" chaincode with a private collection shared by org1 and org2.
func clusterConfig() *netconfig.Config {
	return &netconfig.Config{
		Orgs:      []string{"org1", "org2", "org3"},
		BatchSize: 8,
		Seed:      1,
		Chaincodes: []netconfig.Chaincode{{
			Name:    "asset",
			Version: "1.0",
			Collections: []pvtdata.CollectionConfig{{
				Name:         "pdc1",
				MemberPolicy: "OR(org1.member, org2.member)",
				MaxPeerCount: 3,
			}},
			Contract:   "merged",
			Collection: "pdc1",
		}},
	}
}

func launchTestCluster(t *testing.T, tls bool) *node.Cluster {
	t.Helper()
	if testing.Short() {
		t.Skip("multi-process cluster test skipped in -short mode")
	}
	cfg := clusterConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	var stderr *os.File
	if testing.Verbose() {
		stderr = os.Stderr
	}
	cl, err := node.LaunchCluster(cfg, node.LaunchOptions{
		Self:   self,
		Dir:    t.TempDir(),
		TLS:    tls,
		Stderr: stderr,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	return cl
}

// waitConverged polls every peer process until all report the same
// chain height (>= minHeight), and the peers named in statePeers (nil =
// all) report byte-identical state hashes. Non-members of a private
// collection legitimately diverge in state after a PDC write — they
// hold only the hashed writes — so PDC tests restrict the state check
// to the member set.
func waitConverged(t *testing.T, cl *node.Cluster, minHeight uint64, statePeers []string) (uint64, string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	names := cl.PeerNames()
	if statePeers == nil {
		statePeers = names
	}
	matchState := make(map[string]bool, len(statePeers))
	for _, name := range statePeers {
		matchState[name] = true
	}
	var lastState string
	for {
		heights := make([]uint64, len(names))
		states := make([]string, 0, len(statePeers))
		ok := true
		for i, name := range names {
			pc, err := cl.DialPeer(name)
			if err != nil {
				t.Fatalf("dial %s: %v", name, err)
			}
			info, err := pc.Info(ctx)
			pc.Close()
			if err != nil {
				t.Fatalf("info %s: %v", name, err)
			}
			heights[i] = info.Height
			if info.Height < minHeight || heights[i] != heights[0] {
				ok = false
			}
			if matchState[name] {
				states = append(states, info.StateHash)
				if info.StateHash == "" || states[len(states)-1] != states[0] {
					ok = false
				}
			}
		}
		lastState = fmt.Sprintf("heights=%v states=%v", heights, states)
		if ok {
			return heights[0], states[0]
		}
		select {
		case <-ctx.Done():
			t.Fatalf("peers did not converge: %s", lastState)
		case <-time.After(200 * time.Millisecond):
		}
	}
}

// TestClusterZipfBurstConverges is the loopback-cluster integration
// test: five real OS processes (3 peers, orderer, gateway), a Zipfian
// burst submitted through the wire gateway, and every peer ending at
// the same height with a byte-identical state hash.
func TestClusterZipfBurstConverges(t *testing.T) {
	cl := launchTestCluster(t, false)
	gwc, err := cl.DialGateway()
	if err != nil {
		t.Fatal(err)
	}
	defer gwc.Close()

	const clients, perClient = 4, 25
	h, err := loadgen.NewRemoteHarness(loadgen.Config{
		Clients: clients,
		Seed:    7,
	}, cl.Material.Channel, gwc)
	if err != nil {
		t.Fatal(err)
	}
	point, err := h.Run(loadgen.RunOptions{
		Mix:         loadgen.MixZipf,
		TxPerClient: perClient,
		Keys:        64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := clients * perClient; point.Completed != want {
		t.Fatalf("completed %d of %d transactions (dropped %d)", point.Completed, want, point.Dropped)
	}
	if point.Invalid != 0 {
		t.Fatalf("%d transactions committed invalid", point.Invalid)
	}

	height, state := waitConverged(t, cl, 1, nil)
	if height == 0 {
		t.Fatal("cluster height still 0 after the burst")
	}
	t.Logf("converged: %d blocks, state %s, %.0f tx/s over the wire", height, state[:12], point.Achieved)
}

// TestClusterPrivateDataCrossProcess checks the PDC flow between
// processes: a private write endorsed through the wire is readable on
// every member peer (its private set served over peer.pvt) and absent
// from the non-member.
func TestClusterPrivateDataCrossProcess(t *testing.T) {
	cl := launchTestCluster(t, false)
	gwc, err := cl.DialGateway()
	if err != nil {
		t.Fatal(err)
	}
	defer gwc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	res, err := gwc.Submit(ctx, service.NewInvoke("asset", "setPrivate", "k1", "42").OnChannel(cl.Material.Channel))
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != ledger.Valid {
		t.Fatalf("setPrivate committed %v", res.Code)
	}
	// All peers reach the same height, but only the collection members
	// converge in state: the private namespace lives in member world
	// state while org3 stores the hashed writes alone.
	waitConverged(t, cl, 1, []string{"peer0.org1", "peer0.org2"})

	// Member peers must serve the original private set; the reconcile
	// loop gives stragglers a moment to pull it.
	for _, name := range []string{"peer0.org1", "peer0.org2"} {
		deadline := time.Now().Add(10 * time.Second)
		for {
			pc, err := cl.DialPeer(name)
			if err != nil {
				t.Fatal(err)
			}
			set, err := pc.FetchPrivateData(ctx, res.TxID, "pdc1")
			pc.Close()
			if err != nil {
				t.Fatalf("%s: fetch private data: %v", name, err)
			}
			if set != nil && len(set.Writes) == 1 && set.Writes[0].Key == "k1" && string(set.Writes[0].Value) == "42" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: private data not available: %+v", name, set)
			}
			time.Sleep(200 * time.Millisecond)
		}
	}
	// The non-member must have nothing to serve.
	pc, err := cl.DialPeer("peer0.org3")
	if err != nil {
		t.Fatal(err)
	}
	set, err := pc.FetchPrivateData(ctx, res.TxID, "pdc1")
	pc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if set != nil {
		t.Fatalf("non-member peer0.org3 served private data: %+v", set)
	}
}

// TestClusterTLS runs a whole cluster with pinned-key TLS between every
// process and commits one transaction through it.
func TestClusterTLS(t *testing.T) {
	cl := launchTestCluster(t, true)
	if !cl.TLS() {
		t.Fatal("cluster not running TLS")
	}
	gwc, err := cl.DialGateway()
	if err != nil {
		t.Fatal(err)
	}
	defer gwc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := gwc.Submit(ctx, service.NewInvoke("asset", "set", "color", "green").OnChannel(cl.Material.Channel))
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != ledger.Valid {
		t.Fatalf("commit over TLS: %v", res.Code)
	}
	waitConverged(t, cl, 1, nil)
}
