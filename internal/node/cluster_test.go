package node_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/ledger"
	"repro/internal/loadgen"
	"repro/internal/netconfig"
	"repro/internal/node"
	"repro/internal/orderer"
	"repro/internal/pvtdata"
	"repro/internal/service"
)

// TestMain doubles as the cluster's role runner: LaunchCluster re-execs
// this test binary with PDC_WIRE_ROLE set, and the child becomes a
// peer/orderer/gateway process instead of running the tests.
func TestMain(m *testing.M) {
	if handled, err := node.RunRoleFromEnv(); handled {
		if err != nil {
			fmt.Fprintln(os.Stderr, "node role:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// clusterConfig is the test topology: three orgs, one peer each, the
// "asset" chaincode with a private collection shared by org1 and org2.
func clusterConfig() *netconfig.Config {
	return &netconfig.Config{
		Orgs:      []string{"org1", "org2", "org3"},
		BatchSize: 8,
		Seed:      1,
		Chaincodes: []netconfig.Chaincode{{
			Name:    "asset",
			Version: "1.0",
			Collections: []pvtdata.CollectionConfig{{
				Name:         "pdc1",
				MemberPolicy: "OR(org1.member, org2.member)",
				MaxPeerCount: 3,
			}},
			Contract:   "merged",
			Collection: "pdc1",
		}},
	}
}

func launchTestCluster(t *testing.T, tls bool) *node.Cluster {
	t.Helper()
	if testing.Short() {
		t.Skip("multi-process cluster test skipped in -short mode")
	}
	cfg := clusterConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	var stderr *os.File
	if testing.Verbose() {
		stderr = os.Stderr
	}
	cl, err := node.LaunchCluster(cfg, node.LaunchOptions{
		Self:   self,
		Dir:    t.TempDir(),
		TLS:    tls,
		Stderr: stderr,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	return cl
}

// waitConverged polls every peer process until all report the same
// chain height (>= minHeight), and the peers named in statePeers (nil =
// all) report byte-identical state hashes. Non-members of a private
// collection legitimately diverge in state after a PDC write — they
// hold only the hashed writes — so PDC tests restrict the state check
// to the member set.
func waitConverged(t *testing.T, cl *node.Cluster, minHeight uint64, statePeers []string) (uint64, string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	names := cl.PeerNames()
	if statePeers == nil {
		statePeers = names
	}
	matchState := make(map[string]bool, len(statePeers))
	for _, name := range statePeers {
		matchState[name] = true
	}
	var lastState string
	for {
		heights := make([]uint64, len(names))
		states := make([]string, 0, len(statePeers))
		ok := true
		for i, name := range names {
			pc, err := cl.DialPeer(name)
			if err != nil {
				t.Fatalf("dial %s: %v", name, err)
			}
			info, err := pc.Info(ctx)
			pc.Close()
			if err != nil {
				t.Fatalf("info %s: %v", name, err)
			}
			heights[i] = info.Height
			if info.Height < minHeight || heights[i] != heights[0] {
				ok = false
			}
			if matchState[name] {
				states = append(states, info.StateHash)
				if info.StateHash == "" || states[len(states)-1] != states[0] {
					ok = false
				}
			}
		}
		lastState = fmt.Sprintf("heights=%v states=%v", heights, states)
		if ok {
			return heights[0], states[0]
		}
		select {
		case <-ctx.Done():
			t.Fatalf("peers did not converge: %s", lastState)
		case <-time.After(200 * time.Millisecond):
		}
	}
}

// TestClusterZipfBurstConverges is the loopback-cluster integration
// test: five real OS processes (3 peers, orderer, gateway), a Zipfian
// burst submitted through the wire gateway, and every peer ending at
// the same height with a byte-identical state hash.
func TestClusterZipfBurstConverges(t *testing.T) {
	cl := launchTestCluster(t, false)
	gwc, err := cl.DialGateway()
	if err != nil {
		t.Fatal(err)
	}
	defer gwc.Close()

	const clients, perClient = 4, 25
	h, err := loadgen.NewRemoteHarness(loadgen.Config{
		Clients: clients,
		Seed:    7,
	}, cl.Material.Channel, gwc)
	if err != nil {
		t.Fatal(err)
	}
	point, err := h.Run(loadgen.RunOptions{
		Mix:         loadgen.MixZipf,
		TxPerClient: perClient,
		Keys:        64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := clients * perClient; point.Completed != want {
		t.Fatalf("completed %d of %d transactions (dropped %d)", point.Completed, want, point.Dropped)
	}
	if point.Invalid != 0 {
		t.Fatalf("%d transactions committed invalid", point.Invalid)
	}

	height, state := waitConverged(t, cl, 1, nil)
	if height == 0 {
		t.Fatal("cluster height still 0 after the burst")
	}
	t.Logf("converged: %d blocks, state %s, %.0f tx/s over the wire", height, state[:12], point.Achieved)
}

// TestClusterPrivateDataCrossProcess checks the PDC flow between
// processes: a private write endorsed through the wire is readable on
// every member peer (its private set served over peer.pvt) and absent
// from the non-member.
func TestClusterPrivateDataCrossProcess(t *testing.T) {
	cl := launchTestCluster(t, false)
	gwc, err := cl.DialGateway()
	if err != nil {
		t.Fatal(err)
	}
	defer gwc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	res, err := gwc.Submit(ctx, service.NewInvoke("asset", "setPrivate", "k1", "42").OnChannel(cl.Material.Channel))
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != ledger.Valid {
		t.Fatalf("setPrivate committed %v", res.Code)
	}
	// All peers reach the same height, but only the collection members
	// converge in state: the private namespace lives in member world
	// state while org3 stores the hashed writes alone.
	waitConverged(t, cl, 1, []string{"peer0.org1", "peer0.org2"})

	// Member peers must serve the original private set; the reconcile
	// loop gives stragglers a moment to pull it.
	for _, name := range []string{"peer0.org1", "peer0.org2"} {
		deadline := time.Now().Add(10 * time.Second)
		for {
			pc, err := cl.DialPeer(name)
			if err != nil {
				t.Fatal(err)
			}
			set, err := pc.FetchPrivateData(ctx, res.TxID, "pdc1")
			pc.Close()
			if err != nil {
				t.Fatalf("%s: fetch private data: %v", name, err)
			}
			if set != nil && len(set.Writes) == 1 && set.Writes[0].Key == "k1" && string(set.Writes[0].Value) == "42" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: private data not available: %+v", name, set)
			}
			time.Sleep(200 * time.Millisecond)
		}
	}
	// The non-member must have nothing to serve.
	pc, err := cl.DialPeer("peer0.org3")
	if err != nil {
		t.Fatal(err)
	}
	set, err := pc.FetchPrivateData(ctx, res.TxID, "pdc1")
	pc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if set != nil {
		t.Fatalf("non-member peer0.org3 served private data: %+v", set)
	}
}

// TestClusterSnapshotJoin is the multi-process cold-join path end to
// end: the orderer's retention window compacts history away, a late
// peer process hits ErrCompacted at height 0, fetches a snapshot from a
// running peer over the wire (peer.snapshot.meta/chunks), installs it,
// and converges with the members — private data included — without
// genesis replay.
func TestClusterSnapshotJoin(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster test skipped in -short mode")
	}
	cfg := clusterConfig()
	cfg.PeersPerOrg = 2
	cfg.BatchSize = 1 // one block per submit: history grows fast
	cfg.RetainBlocks = 4
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	var stderr *os.File
	if testing.Verbose() {
		stderr = os.Stderr
	}
	cl, err := node.LaunchCluster(cfg, node.LaunchOptions{
		Self:   self,
		Dir:    t.TempDir(),
		Stderr: stderr,
		// Hold the second peer of every org back; peer1.org1 joins late.
		SkipPeers: []string{"peer1.org1", "peer1.org2", "peer1.org3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	gwc, err := cl.DialGateway()
	if err != nil {
		t.Fatal(err)
	}
	defer gwc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// History: one private write the snapshot must carry, then enough
	// public writes to push block 0 out of the retention window.
	pvt, err := gwc.Submit(ctx, service.NewInvoke("asset", "setPrivate", "k1", "42").OnChannel(cl.Material.Channel))
	if err != nil {
		t.Fatal(err)
	}
	if pvt.Code != ledger.Valid {
		t.Fatalf("setPrivate committed %v", pvt.Code)
	}
	for i := 0; i < 8; i++ {
		res, err := gwc.Submit(ctx, service.NewInvoke("asset", "set", fmt.Sprintf("key-%d", i), fmt.Sprintf("%d", i)).OnChannel(cl.Material.Channel))
		if err != nil {
			t.Fatal(err)
		}
		if res.Code != ledger.Valid {
			t.Fatalf("set key-%d committed %v", i, res.Code)
		}
	}
	members := []string{"peer0.org1", "peer0.org2"}
	height, _ := waitConverged(t, cl, uint64(cfg.RetainBlocks)+2, members)

	// Wait until the drain-gated retention compaction has actually
	// evicted block 0: a replay-from-genesis subscription must fail
	// with ErrCompacted before the late joiner can prove anything.
	for {
		oc, err := cl.DialOrderer()
		if err != nil {
			t.Fatal(err)
		}
		stream, err := oc.Blocks(ctx, 0)
		if err == nil {
			stream.Close()
			oc.Close()
			select {
			case <-ctx.Done():
				t.Fatal("orderer never compacted block 0 away")
			case <-time.After(200 * time.Millisecond):
			}
			continue
		}
		oc.Close()
		if !errors.Is(err, orderer.ErrCompacted) {
			t.Fatalf("replay-from-genesis probe failed with %v, want ErrCompacted", err)
		}
		break
	}

	// The late joiner must bootstrap from peer0.org1's snapshot — the
	// orderer can no longer serve it a genesis replay.
	if err := cl.JoinPeer("peer1.org1", "peer0.org1"); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, cl, height, append(members, "peer1.org1"))

	// The joiner's chain base proves the snapshot path: a genesis
	// replay would leave it at 0. Its state hash matching the members'
	// (waitConverged above) proves the snapshot carried the private
	// write — k1 lives in the private namespace of the member state.
	pc, err := cl.DialPeer("peer1.org1")
	if err != nil {
		t.Fatal(err)
	}
	info, err := pc.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Base == 0 {
		t.Fatal("joiner has chain base 0 — it replayed from genesis instead of installing a snapshot")
	}
	if info.Base > info.Height {
		t.Fatalf("joiner base %d above height %d", info.Base, info.Height)
	}

	// The joiner is a full collection member from here on: a fresh
	// private write lands in a post-base block, the joiner records it
	// missing (no one pushes to it) and reconciles it from the members,
	// after which it serves the set itself.
	pvt2, err := gwc.Submit(ctx, service.NewInvoke("asset", "setPrivate", "k2", "43").OnChannel(cl.Material.Channel))
	if err != nil {
		t.Fatal(err)
	}
	if pvt2.Code != ledger.Valid {
		t.Fatalf("post-join setPrivate committed %v", pvt2.Code)
	}
	waitConverged(t, cl, height+1, append(members, "peer1.org1"))
	deadline := time.Now().Add(10 * time.Second)
	for {
		set, err := pc.FetchPrivateData(ctx, pvt2.TxID, "pdc1")
		if err != nil {
			t.Fatal(err)
		}
		if set != nil && len(set.Writes) == 1 && set.Writes[0].Key == "k2" && string(set.Writes[0].Value) == "43" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("joiner never reconciled the post-join private write: %+v", set)
		}
		time.Sleep(200 * time.Millisecond)
	}
	pc.Close()
	t.Logf("joined at base %d, height %d; pre-join private tx %s carried by state", info.Base, info.Height, pvt.TxID[:8])
}

// TestClusterTLS runs a whole cluster with pinned-key TLS between every
// process and commits one transaction through it.
func TestClusterTLS(t *testing.T) {
	cl := launchTestCluster(t, true)
	if !cl.TLS() {
		t.Fatal("cluster not running TLS")
	}
	gwc, err := cl.DialGateway()
	if err != nil {
		t.Fatal(err)
	}
	defer gwc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := gwc.Submit(ctx, service.NewInvoke("asset", "set", "color", "green").OnChannel(cl.Material.Channel))
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != ledger.Valid {
		t.Fatalf("commit over TLS: %v", res.Code)
	}
	waitConverged(t, cl, 1, nil)
}
