package node

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/netconfig"
	"repro/internal/wire"
)

// Environment variables of the role runner. The cluster integration
// test re-executes its own test binary with PDC_WIRE_ROLE set; `pdcnet
// up` spawns its own binary the same way. Keeping the contract in env
// variables (not flags) lets any binary embed RunRoleFromEnv first
// thing in main and become cluster-spawnable.
const (
	EnvRole     = "PDC_WIRE_ROLE"     // "peer" | "orderer" | "gateway"
	EnvConfig   = "PDC_WIRE_CONFIG"   // topology JSON path
	EnvMaterial = "PDC_WIRE_MATERIAL" // identity material path
	EnvName     = "PDC_WIRE_NAME"     // node identity name
	EnvListen   = "PDC_WIRE_LISTEN"   // TCP listen address
	EnvOrderer  = "PDC_WIRE_ORDERER"  // orderer address (peer, gateway)
	EnvPeers    = "PDC_WIRE_PEERS"    // "name=addr,name=addr"
	EnvTLS      = "PDC_WIRE_TLS"      // "1" enables pinned-key TLS
	EnvCodec    = "PDC_WIRE_CODEC"    // "binary" (default) | "json"
	// EnvSnapshotFrom names the peer a cold-joining peer fetches a
	// bootstrap snapshot from when the orderer log is compacted.
	EnvSnapshotFrom = "PDC_WIRE_SNAPSHOT_FROM"
)

// ReadyPrefix starts the line a spawned role prints once its listener
// is bound; the launcher parses the address after it.
const ReadyPrefix = "READY "

// RunRoleFromEnv starts the role the environment describes and blocks
// until the parent kills the process, sends SIGINT/SIGTERM, or closes
// stdin. Returns (false, nil) immediately when PDC_WIRE_ROLE is unset —
// callers fall through to their normal main. On success the process
// prints "READY <addr>" on stdout.
func RunRoleFromEnv() (bool, error) {
	role := os.Getenv(EnvRole)
	if role == "" {
		return false, nil
	}
	cfg, err := netconfig.Load(os.Getenv(EnvConfig))
	if err != nil {
		return true, err
	}
	material, err := netconfig.LoadMaterial(os.Getenv(EnvMaterial))
	if err != nil {
		return true, err
	}
	peerAddrs, err := ParsePeerAddrs(os.Getenv(EnvPeers))
	if err != nil {
		return true, err
	}
	codec, err := wire.ParseCodec(os.Getenv(EnvCodec))
	if err != nil {
		return true, err
	}
	opts := Options{
		Config:       cfg,
		Material:     material,
		Name:         os.Getenv(EnvName),
		Listen:       os.Getenv(EnvListen),
		OrdererAddr:  os.Getenv(EnvOrderer),
		PeerAddrs:    peerAddrs,
		TLS:          os.Getenv(EnvTLS) == "1",
		Codec:        codec,
		SnapshotFrom: os.Getenv(EnvSnapshotFrom),
		Log:          os.Stderr,
	}
	return true, Run(role, opts)
}

// Run starts one role, prints its READY line, and blocks until the
// process receives SIGINT/SIGTERM or its stdin closes — the launcher
// contract shared by RunRoleFromEnv and pdcnet's role subcommands.
func Run(role string, opts Options) error {
	var n *Node
	var err error
	switch role {
	case "peer":
		n, err = StartPeer(opts)
	case "orderer":
		n, err = StartOrderer(opts)
	case "gateway":
		n, err = StartGateway(opts)
	default:
		return fmt.Errorf("node: unknown role %q", role)
	}
	if err != nil {
		return err
	}
	defer n.Close()
	fmt.Printf("%s%s\n", ReadyPrefix, n.Addr())

	// Exit on a signal or when the launcher closes our stdin — the
	// latter catches a parent that died without killing us.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	stdinClosed := make(chan struct{})
	go func() {
		io.Copy(io.Discard, os.Stdin)
		close(stdinClosed)
	}()
	select {
	case <-sigc:
	case <-stdinClosed:
	}
	return nil
}

// FreePorts reserves n distinct loopback TCP ports and returns
// "127.0.0.1:port" addresses. The listeners are closed before
// returning, so a rare race with another process exists — acceptable
// for loopback clusters on test machines.
func FreePorts(n int) ([]string, error) {
	addrs := make([]string, 0, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("node: reserve port: %w", err)
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs, nil
}

// WaitReady scans a spawned role's stdout for its READY line and
// returns the advertised address. The reader keeps draining in the
// background afterwards so the child never blocks on a full pipe.
func WaitReady(r io.Reader) (string, error) {
	br := bufio.NewReader(r)
	for {
		line, err := br.ReadString('\n')
		if after, found := strings.CutPrefix(line, ReadyPrefix); found {
			go io.Copy(io.Discard, br)
			return strings.TrimRight(after, "\r\n"), nil
		}
		if err != nil {
			return "", fmt.Errorf("node: role exited before READY: %w", err)
		}
	}
}
