// Multi-process deployment subcommands: keygen writes identity
// material, peer/orderer/gateway run one role each behind a TCP wire
// server, and up launches a whole loopback cluster as separate OS
// processes — the reproduction's docker-compose.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/netconfig"
	"repro/internal/node"
	"repro/internal/pvtdata"
	"repro/internal/service"
	"repro/internal/wire"
)

// defaultClusterConfig mirrors the in-process demo topology: three
// orgs, one peer each, an "asset" chaincode whose "pdc1" collection is
// shared by org1 and org2.
func defaultClusterConfig() *netconfig.Config {
	return &netconfig.Config{
		Orgs: []string{"org1", "org2", "org3"},
		Seed: 1,
		Chaincodes: []netconfig.Chaincode{{
			Name:    "asset",
			Version: "1.0",
			Collections: []pvtdata.CollectionConfig{{
				Name:         "pdc1",
				MemberPolicy: "OR(org1.member, org2.member)",
				MaxPeerCount: 3,
			}},
			Contract:   "merged",
			Collection: "pdc1",
		}},
	}
}

func loadOrDefaultConfig(path string) (*netconfig.Config, error) {
	if path != "" {
		return netconfig.Load(path)
	}
	cfg := defaultClusterConfig()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// runKeygen implements `pdcnet keygen`: generate the cluster's identity
// material file (org CAs plus every node identity).
func runKeygen(args []string) error {
	fs := flag.NewFlagSet("pdcnet keygen", flag.ContinueOnError)
	configPath := fs.String("config", "", "topology JSON (defaults to the built-in 3-org layout)")
	out := fs.String("out", "material.json", "output path for the material file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := loadOrDefaultConfig(*configPath)
	if err != nil {
		return err
	}
	m, err := cfg.GenerateMaterial()
	if err != nil {
		return err
	}
	if err := m.Save(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %s: channel %q, %d orgs, %d identities\n", *out, m.Channel, len(m.Orgs), len(m.Identities))
	return nil
}

// runRole implements `pdcnet peer|orderer|gateway`: one role process.
func runRole(role string, args []string) error {
	return runRoleNamed("pdcnet "+role, role, args)
}

// runJoin implements `pdcnet join`: start a peer whose empty ledger
// bootstraps from another peer's snapshot when the orderer's retained
// log no longer reaches back to genesis — the O(state) cold-join path
// (docs/SNAPSHOT.md). It is the peer role plus a -snapshot-from flag.
func runJoin(args []string) error {
	return runRoleNamed("pdcnet join", "peer", args)
}

func runRoleNamed(cmd, role string, args []string) error {
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	configPath := fs.String("config", "", "topology JSON (defaults to the built-in 3-org layout)")
	materialPath := fs.String("material", "material.json", "identity material file (pdcnet keygen)")
	name := fs.String("name", "", "node identity name, e.g. peer0.org1")
	listen := fs.String("listen", "127.0.0.1:0", "TCP listen address")
	ordererAddr := fs.String("orderer", "", "orderer address (peer and gateway roles)")
	peers := fs.String("peers", "", "peer addresses as name=addr,name=addr")
	tlsOn := fs.Bool("tls", false, "pinned-key TLS on the listener and every dial")
	codecFlag := fs.String("codec", "", "wire payload codec for dials: binary (default) or json")
	var snapshotFrom *string
	if role == "peer" {
		snapshotFrom = fs.String("snapshot-from", "",
			"peer to fetch the bootstrap snapshot from when the orderer log is compacted (default: first peer in -peers)")
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	codec, err := wire.ParseCodec(*codecFlag)
	if err != nil {
		return err
	}
	cfg, err := loadOrDefaultConfig(*configPath)
	if err != nil {
		return err
	}
	material, err := netconfig.LoadMaterial(*materialPath)
	if err != nil {
		return err
	}
	peerAddrs, err := node.ParsePeerAddrs(*peers)
	if err != nil {
		return err
	}
	opts := node.Options{
		Config:      cfg,
		Material:    material,
		Name:        *name,
		Listen:      *listen,
		OrdererAddr: *ordererAddr,
		PeerAddrs:   peerAddrs,
		TLS:         *tlsOn,
		Codec:       codec,
		Log:         os.Stderr,
	}
	if snapshotFrom != nil {
		opts.SnapshotFrom = *snapshotFrom
	}
	return node.Run(role, opts)
}

// runUp implements `pdcnet up`: launch the cluster, run a smoke
// transaction through the wire gateway, print every peer's state, and
// keep the cluster running until interrupted.
func runUp(args []string) error {
	fs := flag.NewFlagSet("pdcnet up", flag.ContinueOnError)
	configPath := fs.String("config", "", "topology JSON (defaults to the built-in 3-org layout)")
	tlsOn := fs.Bool("tls", false, "pinned-key TLS between every process")
	dir := fs.String("dir", "", "working directory for material/config (default: a temp dir)")
	smoke := fs.Bool("smoke", true, "submit a smoke transaction after launch")
	codecFlag := fs.String("codec", "", "wire payload codec: binary (default) or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	codec, err := wire.ParseCodec(*codecFlag)
	if err != nil {
		return err
	}
	cfg, err := loadOrDefaultConfig(*configPath)
	if err != nil {
		return err
	}
	workDir := *dir
	if workDir == "" {
		workDir, err = os.MkdirTemp("", "pdcnet-up-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(workDir)
	}
	fmt.Printf("== launching cluster (%d orgs, tls=%v) ==\n", len(cfg.Orgs), *tlsOn)
	cl, err := node.LaunchCluster(cfg, node.LaunchOptions{
		Dir:    workDir,
		TLS:    *tlsOn,
		Codec:  codec,
		Stderr: os.Stderr,
	})
	if err != nil {
		return err
	}
	defer cl.Stop()
	fmt.Printf("orderer  %s\n", cl.OrdererAddr)
	for _, name := range cl.PeerNames() {
		fmt.Printf("peer     %s at %s\n", name, cl.PeerAddrs[name])
	}
	fmt.Printf("gateway  %s\n", cl.GatewayAddr)

	if *smoke {
		if err := smokeTransaction(cl); err != nil {
			return fmt.Errorf("smoke transaction: %w", err)
		}
	}
	fmt.Println("\ncluster up — Ctrl-C to stop")
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	<-sigc
	return nil
}

// smokeTransaction submits one public write through the wire gateway
// and prints each peer's resulting height and state hash.
func smokeTransaction(cl *node.Cluster) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	gwc, err := cl.DialGateway()
	if err != nil {
		return err
	}
	defer gwc.Close()
	cc := cl.Config.Chaincodes
	if len(cc) == 0 {
		fmt.Println("no chaincodes configured; skipping smoke transaction")
		return nil
	}
	fmt.Printf("\n== smoke: set(color, blue) on %q through the wire gateway ==\n", cc[0].Name)
	res, err := gwc.Submit(ctx, service.NewInvoke(cc[0].Name, "set", "color", "blue"))
	if err != nil {
		return err
	}
	fmt.Printf("tx %s -> %v in block %d\n", short(res.TxID), res.Code, res.BlockNum)
	for _, name := range cl.PeerNames() {
		pc, err := cl.DialPeer(name)
		if err != nil {
			return err
		}
		info, err := pc.Info(ctx)
		pc.Close()
		if err != nil {
			return err
		}
		fmt.Printf("  %s: height=%d state=%s\n", name, info.Height, short(info.StateHash))
	}
	return nil
}
