// Command pdcnet runs the reproduction's Fabric network. With no
// subcommand it spins up the in-process equivalent of the test network
// used throughout the paper — three organizations, a Raft ordering
// service, a private data collection shared by org1 and org2 — and
// walks through the full PDC transaction lifecycle, printing what every
// peer stores at each step.
//
// The multi-process subcommands deploy the same topology as separate
// OS processes speaking the TCP wire protocol (docs/WIRE.md):
//
//	pdcnet keygen -out material.json        # write the identity material
//	pdcnet orderer -material material.json -listen 127.0.0.1:7050
//	pdcnet peer -name peer0.org1 -material material.json -orderer ... -peers ...
//	pdcnet gateway -name client0.org1 -material material.json -orderer ... -peers ...
//	pdcnet join -name peer9.org1 ... [-snapshot-from peer0.org1]  # cold-join via snapshot
//	pdcnet up [-tls]                        # launch a whole loopback cluster
//
// In-process demo usage:
//
//	pdcnet
//	pdcnet -defended                      # run with both defense features enabled
//	pdcnet -storage durable -storage-dir /tmp/pdc  # persist every peer's ledger on disk
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/attacks"
	"repro/internal/chaincode"
	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/deliver"
	"repro/internal/gateway"
	"repro/internal/ledger"
	"repro/internal/netconfig"
	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/peer"
	"repro/internal/pvtdata"
	"repro/internal/service"
)

func main() {
	// A process spawned by `pdcnet up` (or a cluster test) carries its
	// role in the environment and never reaches the CLI below.
	if handled, err := node.RunRoleFromEnv(); handled {
		if err != nil {
			fmt.Fprintln(os.Stderr, "pdcnet:", err)
			os.Exit(1)
		}
		return
	}
	args := os.Args[1:]
	var err error
	if len(args) > 0 {
		switch args[0] {
		case "keygen":
			err = runKeygen(args[1:])
		case "orderer", "peer", "gateway":
			err = runRole(args[0], args[1:])
		case "join":
			err = runJoin(args[1:])
		case "up":
			err = runUp(args[1:])
		case "demo":
			err = run(args[1:])
		default:
			err = run(args)
		}
	} else {
		err = run(args)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdcnet:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pdcnet", flag.ContinueOnError)
	defended := fs.Bool("defended", false, "enable defense Features 1 and 2 and the non-member filter")
	configPath := fs.String("config", "", "build the network from a JSON topology file instead of the default 3-org layout (the demo still expects an \"asset\" chaincode with collection \"pdc1\")")
	storageBackend := fs.String("storage", "", "storage backend for every peer (\"memory\", \"durable\", \"null\"; empty = no persistence layer)")
	storageDir := fs.String("storage-dir", "", "root directory for the durable backend (each peer stores under <dir>/<peer name>)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storageBackend == "durable" && *storageDir == "" {
		return fmt.Errorf("-storage durable needs -storage-dir")
	}

	var net *network.Network
	if *configPath != "" {
		cfg, err := netconfig.Load(*configPath)
		if err != nil {
			return err
		}
		fmt.Printf("== building network from %s (%d orgs) ==\n", *configPath, len(cfg.Orgs))
		net, err = cfg.Build()
		if err != nil {
			return err
		}
		if *defended {
			net.SetSecurity(core.DefendedFabric())
		}
		defer net.Close()
		return demo(net)
	}

	sec := core.OriginalFabric()
	if *defended {
		sec = core.DefendedFabric()
	}
	sec.StorageBackend = *storageBackend
	sec.StorageDir = *storageDir

	fmt.Println("== building 3-org network (org1, org2, org3; PDC members: org1, org2) ==")
	net, err := network.New(network.Options{
		Orgs:     []string{"org1", "org2", "org3"},
		Security: sec,
		Seed:     1,
	})
	if err != nil {
		return err
	}
	def := &chaincode.Definition{
		Name:    "asset",
		Version: "1.0",
		Collections: []pvtdata.CollectionConfig{{
			Name:         "pdc1",
			MemberPolicy: "OR(org1.member, org2.member)",
			MaxPeerCount: 3,
		}},
	}
	impl := contracts.NewPublicAsset()
	for name, fn := range contracts.NewPDC(contracts.PDCOptions{Collection: "pdc1"}) {
		impl[name] = fn
	}
	if err := net.DeployChaincode(def, impl); err != nil {
		return err
	}
	defer net.Close()
	return demo(net)
}

// demo walks the PDC transaction lifecycle on a built network. It
// derives collection membership from the deployed "asset" definition so
// it works for config-defined topologies too.
func demo(net *network.Network) error {
	orgs := net.Orgs()
	def := net.Peer(orgs[0]).Definition("asset")
	if def == nil || def.Collection("pdc1") == nil {
		return fmt.Errorf("demo expects an %q chaincode with collection %q", "asset", "pdc1")
	}
	memberOrgs := def.Collection("pdc1").MemberOrgs()
	var members []*peer.Peer
	for _, org := range memberOrgs {
		if p := net.Peer(org); p != nil {
			members = append(members, p)
		}
	}
	var nonMember *peer.Peer
	for _, org := range orgs {
		if !def.Collection("pdc1").IsMember(org) {
			nonMember = net.Peer(org)
			break
		}
	}
	ctx := context.Background()
	contract := net.Gateway(memberOrgs[0]).Network(net.Channel.Name).Contract("asset")

	fmt.Println("\n== public transaction: set(color, blue) via all peers ==")
	res, err := contract.Submit(ctx, "set", gateway.WithArguments("color", "blue"))
	if err != nil {
		return err
	}
	fmt.Printf("tx %s -> %v in block %d (commit-notified in %s)\n",
		short(res.TxID), res.Code, res.BlockNum, res.CommitWait.Round(0))

	// Write-only PDC transactions can be endorsed by every peer in the
	// channel — non-members included (Use Case 1) — so endorsing with
	// all peers always satisfies the chaincode-level policy.
	fmt.Println("\n== PDC write: setPrivate(k1, 12), endorsed by all peers (Use Case 1) ==")
	res, err = contract.Submit(ctx, "setPrivate", gateway.WithArguments("k1", "12"))
	if err != nil {
		return err
	}
	fmt.Printf("tx %s -> %v in block %d\n", short(res.TxID), res.Code, res.BlockNum)
	for _, org := range net.Orgs() {
		p := net.Peer(org)
		if v, ver, ok := p.PvtStore().GetPrivate("asset", "pdc1", "k1"); ok {
			fmt.Printf("  %s: private k1 = %q @v%d\n", p.Name(), v, ver)
		} else {
			_, ver, hasHash := p.PvtStore().GetPrivateHash("asset", "pdc1", "k1")
			fmt.Printf("  %s: no private data; hash present=%v @v%d\n", p.Name(), hasHash, ver)
		}
	}

	fmt.Println("\n== PDC audited read: readPrivate(k1) submitted as a transaction ==")
	res, err = contract.Submit(ctx, "readPrivate",
		gateway.WithArguments("k1"), gateway.WithEndorsers(service.AsEndorsers(members)...))
	if err != nil {
		return err
	}
	fmt.Printf("tx %s -> %v; client received payload %q\n", short(res.TxID), res.Code, res.Payload)
	if res.Code != ledger.Valid {
		fmt.Println("  (read-only transactions accept member endorsements only, so the")
		fmt.Println("   members must constitute a majority of orgs to pass validation)")
	}

	fmt.Printf("\n== non-member %s scans its own blockchain for PDC payloads ==\n", nonMember.Name())
	leaks := attacks.ExtractPDCPayloads(nonMember)
	if len(leaks) == 0 {
		fmt.Println("  nothing recoverable (payloads hashed under Feature 2, or no")
		fmt.Println("  valid PDC transaction carries a plaintext payload)")
	}
	for _, l := range leaks {
		fmt.Printf("  block %d tx %s (%s): payload %q\n", l.BlockNum, short(l.TxID), l.Function, l.Payload)
	}

	// Replay the whole chain from the member anchor's delivery service —
	// the stream a real Gateway client would follow for commit events.
	fmt.Printf("\n== deliver stream of %s, replayed from block 0 ==\n", members[0].Name())
	sub, err := members[0].Deliver().Subscribe(0)
	if err != nil {
		return err
	}
	defer sub.Close()
	// One block event plus one status event per transaction, for every
	// block committed so far.
	expect := 0
	for n := uint64(0); n < members[0].Ledger().Height(); n++ {
		b, err := members[0].Ledger().Block(n)
		if err != nil {
			return err
		}
		expect += 1 + len(b.Transactions)
	}
	for i := 0; i < expect; i++ {
		ev, err := sub.Recv(ctx)
		if err != nil {
			return err
		}
		switch e := ev.(type) {
		case *deliver.BlockEvent:
			fmt.Printf("  block %d (%d txs)\n", e.Number, len(e.Block.Transactions))
		case *deliver.TxStatusEvent:
			detail := ""
			if e.Detail != "" {
				detail = " — " + e.Detail
			}
			fmt.Printf("    tx %s -> %v%s\n", short(e.TxID), e.Code, detail)
		}
	}

	fmt.Println("\n== ledger state ==")
	for _, p := range net.Peers() {
		fmt.Printf("  %s: height=%d chain-intact=%v\n", p.Name(), p.Ledger().Height(), p.Ledger().VerifyChain() == -1)
	}
	return nil
}

func short(txID string) string {
	if len(txID) > 12 {
		return txID[:12]
	}
	return txID
}
