// Command experiments regenerates every table and figure of the paper in
// one run: Table I semantics (via the test suite), the full Table II
// attack & defense matrix, the Figs. 7–10 corpus study, and the Fig. 11
// latency comparison. It is the "reproduce the paper" entry point.
//
// Usage:
//
//	experiments              # everything (generates a corpus under -workdir)
//	experiments -runs 200    # more latency samples
//	experiments -skip corpus # skip the 6392-project generation
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/analyzer"
	"repro/internal/attacks"
	"repro/internal/corpus"
	"repro/internal/perf"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	runs := fs.Int("runs", 100, "latency samples per Fig. 11 cell")
	workdir := fs.String("workdir", "", "directory for the generated corpus (default: a temp dir)")
	skip := fs.String("skip", "", "comma-separated steps to skip: matrix,corpus,latency")
	if err := fs.Parse(args); err != nil {
		return err
	}
	skipSet := make(map[string]bool)
	for _, s := range strings.Split(*skip, ",") {
		if s != "" {
			skipSet[strings.TrimSpace(s)] = true
		}
	}

	banner("Table II — attack & defense matrix")
	if skipSet["matrix"] {
		fmt.Println("skipped")
	} else if err := runMatrix(); err != nil {
		return err
	}

	banner("Figs. 7-10 — GitHub corpus study")
	if skipSet["corpus"] {
		fmt.Println("skipped")
	} else if err := runCorpus(*workdir); err != nil {
		return err
	}

	banner("Fig. 11 — defense overhead")
	if skipSet["latency"] {
		fmt.Println("skipped")
	} else if err := runLatency(*runs); err != nil {
		return err
	}

	banner("Done")
	fmt.Println("Table I and all protocol-level assertions are covered by the test")
	fmt.Println("suite: go test ./...")
	return nil
}

func banner(title string) {
	fmt.Printf("\n============================================================\n")
	fmt.Printf("%s\n", title)
	fmt.Printf("============================================================\n")
}

func runMatrix() error {
	start := time.Now()
	m, err := attacks.RunMatrix()
	if err != nil {
		return err
	}
	fmt.Print(m.Render())
	if m.Equal(attacks.ExpectedMatrix()) {
		fmt.Printf("matches the paper's Table II (%.1fs)\n", time.Since(start).Seconds())
		return nil
	}
	fmt.Println("DEVIATIONS:", m.Diff(attacks.ExpectedMatrix()))
	return fmt.Errorf("Table II deviates from the paper")
}

func runCorpus(workdir string) error {
	if workdir == "" {
		dir, err := os.MkdirTemp("", "pdc-corpus-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		workdir = dir
	}
	root := filepath.Join(workdir, "corpus")
	start := time.Now()
	n, err := corpus.Generate(root, corpus.PaperSpec())
	if err != nil {
		return err
	}
	fmt.Printf("generated %d projects in %.1fs\n\n", n, time.Since(start).Seconds())
	report, err := analyzer.ScanCorpus(root)
	if err != nil {
		return err
	}
	fmt.Print(report.RenderAll())
	return nil
}

func runLatency(runs int) error {
	results, err := perf.RunFig11(runs)
	if err != nil {
		return err
	}
	fmt.Print(perf.Render(results))
	return nil
}
