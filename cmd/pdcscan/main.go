// Command pdcscan is the static analysis tool of §V-C: it scans a
// directory of Hyperledger Fabric projects for private data collection
// usage, endorsement policy configuration and PDC leakage patterns, and
// prints the corpus statistics of the paper's Figs. 7–10.
//
// Usage:
//
//	pdcscan -root ./corpus                 # all figures
//	pdcscan -root ./corpus -report fig9    # one figure
//	pdcscan -root ./corpus -project proj-00001   # one project in detail
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analyzer"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pdcscan:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pdcscan", flag.ContinueOnError)
	root := fs.String("root", "", "corpus root directory (each subdirectory is one project)")
	report := fs.String("report", "all", "report to print: years|pdctype|policy|leakage|all")
	project := fs.String("project", "", "print the detailed report of one project instead")
	asJSON := fs.Bool("json", false, "emit the aggregate report as JSON")
	advise := fs.Bool("advise", false, "print per-project misuse advisories instead of aggregates")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *root == "" {
		fs.Usage()
		return fmt.Errorf("-root is required")
	}

	if *project != "" {
		return scanOne(filepath.Join(*root, *project))
	}

	corpus, err := analyzer.ScanCorpus(*root)
	if err != nil {
		return err
	}
	if *asJSON {
		return printJSON(corpus)
	}
	if *advise {
		for _, proj := range corpus.Projects {
			advisories := analyzer.Advise(proj)
			if len(advisories) == 0 {
				continue
			}
			fmt.Printf("%s:\n", proj.Name)
			for _, line := range strings.Split(strings.TrimRight(analyzer.RenderAdvisories(advisories), "\n"), "\n") {
				fmt.Printf("  %s\n", line)
			}
		}
		return nil
	}
	switch *report {
	case "years", "fig7":
		fmt.Print(corpus.RenderFig7())
	case "pdctype", "fig8":
		fmt.Print(corpus.RenderFig8())
	case "policy", "fig9":
		fmt.Print(corpus.RenderFig9())
	case "leakage", "fig10":
		fmt.Print(corpus.RenderFig10())
	case "all":
		fmt.Print(corpus.RenderAll())
	default:
		return fmt.Errorf("unknown report %q", *report)
	}
	return nil
}

// jsonReport is the machine-readable aggregate, with the paper's
// headline percentages precomputed.
type jsonReport struct {
	Total                 int            `json:"total_projects"`
	ExplicitPDC           int            `json:"explicit_pdc"`
	ImplicitPDC           int            `json:"implicit_pdc"`
	BothPDC               int            `json:"both_pdc"`
	ImplicitOnly          int            `json:"implicit_only"`
	PDCTotal              int            `json:"pdc_total"`
	ByYear                map[string]int `json:"projects_by_year"`
	PDCByYear             map[string]int `json:"pdc_by_year"`
	ChaincodeLevelPolicy  int            `json:"chaincode_level_policy"`
	CollectionLevelPolicy int            `json:"collection_level_policy"`
	ConfigtxFound         int            `json:"configtx_found"`
	ConfigtxMajority      int            `json:"configtx_majority"`
	ReadLeak              int            `json:"read_leak"`
	ReadWriteLeak         int            `json:"read_write_leak"`
	NoLeak                int            `json:"no_leak"`
	InjectionVulnerable   string         `json:"injection_vulnerable_pct"`
	Leakage               string         `json:"leakage_pct"`
}

func printJSON(r *analyzer.CorpusReport) error {
	out := jsonReport{
		Total:                 r.Total,
		ExplicitPDC:           r.ExplicitPDC,
		ImplicitPDC:           r.ImplicitPDC,
		BothPDC:               r.BothPDC,
		ImplicitOnly:          r.ImplicitOnly,
		PDCTotal:              r.PDCTotal,
		ByYear:                map[string]int{},
		PDCByYear:             map[string]int{},
		ChaincodeLevelPolicy:  r.ChaincodeLevelPolicy,
		CollectionLevelPolicy: r.CollectionLevelPolicy,
		ConfigtxFound:         r.ConfigtxFound,
		ConfigtxMajority:      r.ConfigtxMajority,
		ReadLeak:              r.ReadLeak,
		ReadWriteLeak:         r.ReadWriteLeak,
		NoLeak:                r.NoLeak,
		InjectionVulnerable:   r.VulnerableToInjectionPct(),
		Leakage:               r.LeakagePct(),
	}
	for _, y := range r.Years() {
		key := fmt.Sprintf("%d", y)
		out.ByYear[key] = r.ByYear[y]
		out.PDCByYear[key] = r.PDCByYear[y]
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func scanOne(dir string) error {
	r, err := analyzer.ScanProject(dir)
	if err != nil {
		return err
	}
	fmt.Printf("project:       %s\n", r.Name)
	fmt.Printf("created:       %d\n", r.CreatedYear)
	fmt.Printf("explicit PDC:  %v\n", r.ExplicitPDC)
	fmt.Printf("implicit PDC:  %v\n", r.ImplicitPDC)
	for _, c := range r.Collections {
		fmt.Printf("collection:    %s (endorsementPolicy=%v) in %s\n", c.Name, c.HasEndorsementPolicy, c.File)
	}
	if r.ConfigtxPolicy != "" {
		fmt.Printf("configtx rule: %s\n", r.ConfigtxPolicy)
	}
	for _, l := range r.Leaks {
		fmt.Printf("LEAK (%s):     %s in %s\n", l.Kind, l.Function, l.File)
	}
	if len(r.Leaks) == 0 {
		fmt.Println("no PDC leakage patterns found")
	}
	return nil
}
