// Command pdcattack runs the paper's attack experiments (§V-A, §V-B)
// against freshly built prototype networks and prints the outcomes,
// including the full attack & defense matrix of Table II.
//
// Usage:
//
//	pdcattack -matrix
//	pdcattack -scenario read|write|readwrite|delete|noutof|collpolicy|leakread|leakwrite
//	pdcattack -scenario read -defense feature1
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/attacks"
	"repro/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pdcattack:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pdcattack", flag.ContinueOnError)
	matrix := fs.Bool("matrix", false, "regenerate the full Table II attack & defense matrix")
	scenario := fs.String("scenario", "", "run one scenario: read|write|readwrite|delete|noutof|collpolicy|leakread|leakwrite")
	defense := fs.String("defense", "", "defense features: none|feature1|feature2|filter|all")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *matrix {
		return runMatrix()
	}
	if *scenario == "" {
		fs.Usage()
		return fmt.Errorf("either -matrix or -scenario is required")
	}
	return runScenario(*scenario, *defense)
}

func runMatrix() error {
	fmt.Println("Regenerating Table II (each cell runs every attack on a fresh network)...")
	m, err := attacks.RunMatrix()
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(m.Render())
	want := attacks.ExpectedMatrix()
	if m.Equal(want) {
		fmt.Println("\nMatrix matches the paper's Table II.")
		return nil
	}
	fmt.Println("\nDeviations from the paper's Table II:")
	for _, d := range m.Diff(want) {
		fmt.Println("  ", d)
	}
	return fmt.Errorf("matrix deviates from the published table")
}

func securityFor(defense string) (core.SecurityConfig, error) {
	switch defense {
	case "", "none":
		return core.OriginalFabric(), nil
	case "feature1":
		return core.Feature1Only(), nil
	case "feature2":
		return core.Feature2Only(), nil
	case "filter":
		return core.SecurityConfig{FilterNonMemberEndorsements: true}, nil
	case "all":
		return core.DefendedFabric(), nil
	default:
		return core.SecurityConfig{}, fmt.Errorf("unknown defense %q", defense)
	}
}

func runScenario(name, defense string) error {
	sec, err := securityFor(defense)
	if err != nil {
		return err
	}

	var s attacks.Scenario
	var attack func(*attacks.Env) attacks.Outcome
	switch name {
	case "read":
		s = attacks.Scenario{Name: "fake read injection", Security: sec}
		attack = attacks.FakeReadInjection
	case "write":
		s = attacks.Scenario{Name: "fake write injection", Security: sec}
		attack = attacks.FakeWriteInjection
	case "readwrite":
		s = attacks.Scenario{Name: "fake read-write injection", Security: sec}
		attack = attacks.FakeReadWriteInjection
	case "delete":
		s = attacks.Scenario{Name: "PDC delete attack", Security: sec}
		attack = attacks.PDCDeleteAttack
	case "noutof":
		s = attacks.Scenario{
			Name:            "attacks under 2OutOf5",
			Orgs:            []string{"org1", "org2", "org3", "org4", "org5"},
			ChaincodePolicy: "OutOf(2, org1.peer, org2.peer, org3.peer, org4.peer, org5.peer)",
			Malicious:       []string{"org3", "org4"},
			Security:        sec,
		}
		attack = attacks.FakeReadInjection
	case "collpolicy":
		s = attacks.Scenario{
			Name:         "attacks under collection-level AND(org1, org2)",
			CollectionEP: "AND(org1.peer, org2.peer)",
			Security:     sec,
		}
		attack = attacks.FakeReadInjection
	case "leakread":
		s = attacks.Scenario{Name: "PDC-read leakage", DisableForgers: true, Security: sec}
		attack = attacks.PDCReadLeakage
	case "leakwrite":
		s = attacks.Scenario{Name: "PDC-write leakage", DisableForgers: true, LeakOnWrite: true, Security: sec}
		attack = func(e *attacks.Env) attacks.Outcome { return attacks.PDCWriteLeakage(e, "13") }
	default:
		return fmt.Errorf("unknown scenario %q", name)
	}
	if defense != "" && defense != "none" {
		s.Name += " + defense " + defense
		// Feature 1 needs a collection policy to route reads to.
		if defense == "feature1" || defense == "all" {
			if s.CollectionEP == "" {
				s.CollectionEP = "AND(org1.peer, org2.peer)"
			}
		}
	}

	fmt.Printf("Scenario: %s\n", s.Name)
	env, err := attacks.Setup(s)
	if err != nil {
		return err
	}
	out := attack(env)
	verdict := "ATTACK FAILED"
	if out.Succeeded {
		verdict = "ATTACK SUCCEEDED"
	}
	fmt.Printf("%s\n  tx:     %s\n  code:   %v\n  detail: %s\n", verdict, out.TxID, out.Code, out.Detail)
	return nil
}
