// Command fabricbench regenerates Fig. 11 of the paper: per-transaction
// execution (endorsement) latency and validation latency for read, write
// and delete transactions, under the original framework and under the
// framework with the defense features enabled.
//
// Usage:
//
//	fabricbench            # 100 runs per cell, as in the paper
//	fabricbench -runs 500
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/perf"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fabricbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fabricbench", flag.ContinueOnError)
	runs := fs.Int("runs", 100, "measurement runs per (framework, phase, tx) cell")
	verbose := fs.Bool("v", false, "print min/median/max for every cell")
	throughput := fs.Bool("throughput", false, "also measure end-to-end throughput")
	clients := fs.Int("clients", 4, "concurrent clients for -throughput")
	txs := fs.Int("txs", 200, "transactions for -throughput")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *throughput {
		var results []perf.ThroughputResult
		for _, v := range []struct {
			name string
			sec  core.SecurityConfig
		}{
			{"original", core.OriginalFabric()},
			{"defended", core.DefendedFabric()},
		} {
			r, err := perf.MeasureThroughput(v.sec, v.name, *clients, *txs)
			if err != nil {
				return err
			}
			results = append(results, r)
		}
		fmt.Print(perf.RenderThroughput(results))
		fmt.Println()
	}

	fmt.Printf("Measuring execution and validation latency (%d runs per cell)...\n", *runs)
	results, err := perf.RunFig11(*runs)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(perf.Render(results))

	if *verbose {
		fmt.Println("\nDetailed samples:")
		for _, r := range results {
			fmt.Printf("%-10s %-11s %-8s mean=%-12s median=%-12s min=%-12s max=%s\n",
				r.Framework, r.Phase, r.Kind,
				r.Stats.Mean, r.Stats.Median, r.Stats.Min, r.Stats.Max)
		}
	}
	return nil
}
