// Command fabricbench regenerates Fig. 11 of the paper: per-transaction
// execution (endorsement) latency and validation latency for read, write
// and delete transactions, under the original framework and under the
// framework with the defense features enabled.
//
// Beyond the paper, -pipeline measures the parallel block validation
// pipeline (docs/VALIDATION.md): commit throughput at several worker
// counts plus the per-phase latency histograms. -reconcile runs the
// anti-entropy reconciliation scenario (docs/PROTOCOL.md): dissemination
// to one member peer is dropped for a batch of private writes, the
// network heals, and the tick-driven reconciler recovers the member's
// private store, reporting attempts, failures and per-attempt latency.
// -deliver drives concurrent Gateway clients through the push-notified
// commit flow (endorse, order, wait for the commit-status event on the
// peer's deliver stream) and reports the submit→commit-notified latency
// distribution. -statedb runs the world-state micro-scenario
// (docs/STATEDB.md) — range scans, batched MVCC version reads, snapshot
// take/read cost, and scan latency under a concurrent writer — and with
// -json writes the result to BENCH_statedb.json as a committed baseline.
// -storage compares the storage backends (docs/STORAGE.md): raw
// state-log append cost with and without fsync, compaction and
// recovery-replay cost, and end-to-end throughput with every peer on
// each backend; -json writes BENCH_storage.json. -load runs the
// closed-loop load-generation scenario (docs/LOAD.md): a fleet of
// paced Gateway clients sweeps the aggregate arrival rate across three
// workload mixes (Zipfian hotspot, MVCC-conflict-heavy, large values)
// until the commit pipeline's knee, then demonstrates the overload and
// duplicate machinery (admission shedding, abandoned-handle cleanup,
// dedup-cache rejections); -json writes BENCH_e2e.json. -wire compares
// the in-process baseline against the same burst submitted through the
// TCP wire protocol to a cluster of separate OS processes (this binary
// re-executed per role, docs/WIRE.md) under each payload codec
// (-wire-codec both|binary|json), optionally adding TLS (-wire-tls)
// and 16 KiB-value (-wire-large) cells; -wire-gate fails the run if
// the binary codec measures slower than JSON (-wire-gate-slack widens
// the noise tolerance for short smoke runs); -json writes
// BENCH_wire.json. -snapshot compares the two cold-join paths
// (docs/SNAPSHOT.md): genesis replay of the full chain plus private
// data reconciliation against snapshot export+install at the source's
// commit point, verifying both joiners end byte-identical to the
// source; -snapshot-gate fails the run below a required speedup and
// -json writes BENCH_snapshot.json.
//
// Usage:
//
//	fabricbench                 # 100 runs per cell, as in the paper
//	fabricbench -runs 500
//	fabricbench -workers 8      # validation worker pool for all runs
//	fabricbench -pipeline       # 1/2/GOMAXPROCS worker comparison
//	fabricbench -reconcile      # anti-entropy convergence scenario
//	fabricbench -deliver        # commit-notification latency scenario
//	fabricbench -statedb -json  # world-state scenario + JSON baseline
//	fabricbench -storage -json  # storage-backend scenario + JSON baseline
//	fabricbench -load -json     # closed-loop rate sweep + JSON baseline
//	fabricbench -wire -json     # in-process vs multi-process wire latency
//	fabricbench -snapshot -json # snapshot cold join vs genesis replay
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/node"
	"repro/internal/perf"
	"repro/internal/wire"
)

// wireGateCheck enforces the CI smoke invariant: the binary codec must
// not be measurably slower than JSON on the same deployment. The slack
// absorbs scheduler noise — the gate exists to catch systematic
// inversions, not run-to-run jitter, so short smoke runs widen it.
func wireGateCheck(r perf.WireResult, slack float64) error {
	bin, js := r.Cell("wire-binary"), r.Cell("wire-json")
	if bin == nil || js == nil {
		return fmt.Errorf("wire gate: need both wire-binary and wire-json cells (use -wire-codec both)")
	}
	if js.P50Ms > 0 && bin.P50Ms > js.P50Ms*slack {
		return fmt.Errorf("wire gate: binary p50 %.2fms > json p50 %.2fms x %.2f", bin.P50Ms, js.P50Ms, slack)
	}
	if js.AchievedTPS > 0 && bin.AchievedTPS < js.AchievedTPS/slack {
		return fmt.Errorf("wire gate: binary tps %.1f < json tps %.1f / %.2f", bin.AchievedTPS, js.AchievedTPS, slack)
	}
	return nil
}

func main() {
	// The -wire scenario launches this binary as the cluster's role
	// processes; a child carries its role in the environment.
	if handled, err := node.RunRoleFromEnv(); handled {
		if err != nil {
			fmt.Fprintln(os.Stderr, "fabricbench role:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fabricbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fabricbench", flag.ContinueOnError)
	runs := fs.Int("runs", 100, "measurement runs per (framework, phase, tx) cell")
	verbose := fs.Bool("v", false, "print min/median/max for every cell")
	throughput := fs.Bool("throughput", false, "also measure end-to-end throughput")
	clients := fs.Int("clients", 4, "concurrent clients for -throughput")
	txs := fs.Int("txs", 200, "transactions for -throughput")
	workers := fs.Int("workers", 0, "validation worker pool size (0 = GOMAXPROCS)")
	pipeline := fs.Bool("pipeline", false, "measure block validation pipeline throughput at 1/2/GOMAXPROCS workers")
	pipelineBlocks := fs.Int("pipeline-blocks", 4, "blocks per worker setting for -pipeline")
	pipelineTxs := fs.Int("pipeline-txs", 32, "transactions per block for -pipeline")
	reconcileFlag := fs.Bool("reconcile", false, "run the anti-entropy reconciliation scenario (drop, commit, heal, tick to convergence)")
	reconcileTxs := fs.Int("reconcile-txs", 16, "private transactions missed by the isolated member for -reconcile")
	reconcileIsolated := fs.Int("reconcile-isolated-ticks", 3, "failing reconciler ticks before the heal for -reconcile")
	deliverFlag := fs.Bool("deliver", false, "measure submit→commit-notified latency through the Gateway + deliver stream")
	deliverClients := fs.Int("deliver-clients", 4, "concurrent Gateway clients for -deliver")
	deliverTxs := fs.Int("deliver-txs", 200, "transactions for -deliver")
	statedbFlag := fs.Bool("statedb", false, "run the world-state micro-scenario (range scans, batched MVCC reads, snapshots, contended scans)")
	statedbKeys := fs.Int("statedb-keys", 10000, "keys per namespace for -statedb")
	orderFlag := fs.Bool("order", false, "run the ordering-throughput grid (batch sizes 1/10/100 x 1/4/16 submitters) plus the raft ProposeBatch comparison")
	orderTxs := fs.Int("order-txs", 2000, "transactions per grid cell for -order")
	loadFlag := fs.Bool("load", false, "run the closed-loop load scenario (arrival-rate sweep per workload mix to the knee, plus the overload/duplicate machinery demo)")
	loadClients := fs.Int("load-clients", 8, "simulated Gateway clients for -load")
	loadTxs := fs.Int("load-txs", 40, "scheduled transactions per client per sweep point for -load")
	loadBatch := fs.Int("load-batch", 32, "orderer batch size for -load")
	loadRates := fs.String("load-rates", "100,200,400,800,1600", "comma-separated aggregate arrival rates (tx/s) for the -load sweep")
	storageFlag := fs.Bool("storage", false, "run the storage-backend scenario (append/compact/recover cost and end-to-end TPS per backend)")
	storageBatches := fs.Int("storage-batches", 400, "state batches for the -storage raw-append stage")
	storageRecords := fs.Int("storage-records", 32, "records per batch for -storage")
	storageTxs := fs.Int("storage-txs", 96, "end-to-end transactions per backend for -storage (0 skips the throughput stage)")
	snapshotFlag := fs.Bool("snapshot", false, "compare cold-join paths: snapshot export+install vs genesis replay of the full chain")
	snapshotBlocks := fs.Int("snapshot-blocks", 10000, "public blocks in the chain for -snapshot")
	snapshotTxs := fs.Int("snapshot-txs", 1, "transactions per block for -snapshot")
	snapshotSeeded := fs.Int("snapshot-seeded", 16, "seeded private keys for -snapshot")
	snapshotGate := fs.Float64("snapshot-gate", 0, "with -snapshot, fail if the measured speedup is below this (0 disables)")
	wireFlag := fs.Bool("wire", false, "compare in-process vs multi-process wire-protocol submit→commit latency")
	wireClients := fs.Int("wire-clients", 4, "concurrent clients for -wire")
	wireTxs := fs.Int("wire-txs", 50, "transactions per client for -wire")
	wireBatch := fs.Int("wire-batch", 8, "orderer batch size for -wire")
	wireCodec := fs.String("wire-codec", "both", "payload codec cells for -wire: both, binary or json")
	wireTLS := fs.Bool("wire-tls", false, "add a binary-codec TLS cell to -wire")
	wireLarge := fs.Bool("wire-large", false, "add a binary-codec 16 KiB-value cell to -wire")
	wireGate := fs.Bool("wire-gate", false, "with -wire, fail if the binary codec is slower than JSON (CI smoke)")
	wireGateSlack := fs.Float64("wire-gate-slack", 1.10, "noise tolerance for -wire-gate (e.g. 1.25 allows 25% slack)")
	jsonFlag := fs.Bool("json", false, "with -statedb, -order, -storage, -snapshot or -wire, write the result to -json-out as a committed baseline")
	jsonOut := fs.String("json-out", "", "output path for -json (default BENCH_statedb.json / BENCH_order.json / BENCH_storage.json / BENCH_snapshot.json / BENCH_wire.json; \"-\" for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	writeJSON := func(out []byte, defaultPath string) error {
		path := *jsonOut
		if path == "" {
			path = defaultPath
		}
		if path == "-" {
			fmt.Print(string(out))
			return nil
		}
		if err := os.WriteFile(path, out, 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", path)
		return nil
	}

	if *wireFlag {
		self, err := os.Executable()
		if err != nil {
			return err
		}
		var codecs []wire.Codec
		switch *wireCodec {
		case "both":
			codecs = []wire.Codec{wire.CodecBinary, wire.CodecJSON}
		default:
			c, err := wire.ParseCodec(*wireCodec)
			if err != nil {
				return fmt.Errorf("-wire-codec: %w", err)
			}
			codecs = []wire.Codec{c}
		}
		fmt.Printf("Measuring wire-protocol deployment (%d clients x %d tx, batch %d, codec=%s, tls=%v, large=%v)...\n\n",
			*wireClients, *wireTxs, *wireBatch, *wireCodec, *wireTLS, *wireLarge)
		r, err := perf.MeasureWire(self, perf.WireOptions{
			Clients:     *wireClients,
			TxPerClient: *wireTxs,
			BatchSize:   *wireBatch,
			Codecs:      codecs,
			TLS:         *wireTLS,
			Large:       *wireLarge,
		})
		if err != nil {
			return err
		}
		fmt.Print(perf.RenderWire(r))
		if *jsonFlag {
			out, err := perf.WireJSON(r)
			if err != nil {
				return err
			}
			if err := writeJSON(out, "BENCH_wire.json"); err != nil {
				return err
			}
		}
		if *wireGate {
			if err := wireGateCheck(r, *wireGateSlack); err != nil {
				return err
			}
			fmt.Println("\nwire gate: binary codec is not slower than JSON")
		}
		// The wire scenario builds its own processes; skip the Fig. 11 run.
		return nil
	}

	if *snapshotFlag {
		fmt.Printf("Measuring cold join: snapshot vs genesis replay (%d blocks x %d txs, %d seeded private keys)...\n\n",
			*snapshotBlocks, *snapshotTxs, *snapshotSeeded)
		r, err := perf.MeasureSnapshot(*snapshotBlocks, *snapshotTxs, *snapshotSeeded)
		if err != nil {
			return err
		}
		fmt.Print(perf.RenderSnapshot(r))
		if *jsonFlag {
			out, err := perf.SnapshotJSON(r)
			if err != nil {
				return err
			}
			if err := writeJSON(out, "BENCH_snapshot.json"); err != nil {
				return err
			}
		}
		if *snapshotGate > 0 && r.Speedup < *snapshotGate {
			return fmt.Errorf("snapshot gate: speedup %.1fx below required %.1fx", r.Speedup, *snapshotGate)
		}
		// The snapshot scenario builds its own network; skip the Fig. 11 run.
		return nil
	}

	if *loadFlag {
		var rates []float64
		for _, f := range strings.Split(*loadRates, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || r <= 0 {
				return fmt.Errorf("-load-rates: bad rate %q", f)
			}
			rates = append(rates, r)
		}
		fmt.Printf("Measuring closed-loop load (%d clients, %d tx/client/point, rates %s tx/s)...\n\n",
			*loadClients, *loadTxs, *loadRates)
		r, err := loadgen.MeasureE2E(loadgen.Config{
			Clients:   *loadClients,
			BatchSize: *loadBatch,
		}, *loadTxs, rates)
		if err != nil {
			return err
		}
		fmt.Print(loadgen.Render(r))
		if *jsonFlag {
			out, err := loadgen.E2EJSON(r)
			if err != nil {
				return err
			}
			if err := writeJSON(out, "BENCH_e2e.json"); err != nil {
				return err
			}
		}
		// The load scenario builds its own networks; skip the Fig. 11 run.
		return nil
	}

	if *orderFlag {
		fmt.Printf("Measuring pipelined ordering service (%d txs per cell)...\n\n", *orderTxs)
		r := perf.MeasureOrder(*orderTxs)
		fmt.Print(perf.RenderOrder(r))
		if *jsonFlag {
			out, err := perf.OrderJSON(r)
			if err != nil {
				return err
			}
			if err := writeJSON(out, "BENCH_order.json"); err != nil {
				return err
			}
		}
		// The ordering scenario needs no network; skip the Fig. 11 run.
		return nil
	}

	if *storageFlag {
		fmt.Printf("Measuring storage backends (%d batches x %d records, %d e2e txs per backend)...\n\n",
			*storageBatches, *storageRecords, *storageTxs)
		r, err := perf.MeasureStorage(*storageBatches, *storageRecords, *clients, *storageTxs)
		if err != nil {
			return err
		}
		fmt.Print(perf.RenderStorage(r))
		if *jsonFlag {
			out, err := perf.StorageJSON(r)
			if err != nil {
				return err
			}
			if err := writeJSON(out, "BENCH_storage.json"); err != nil {
				return err
			}
		}
		// The storage scenario builds its own networks; skip the Fig. 11 run.
		return nil
	}

	if *statedbFlag {
		fmt.Printf("Measuring world state database (%d keys/namespace)...\n\n", *statedbKeys)
		r := perf.MeasureStateDB(*statedbKeys)
		fmt.Print(perf.RenderStateDB(r))
		if *jsonFlag {
			out, err := perf.StateDBJSON(r)
			if err != nil {
				return err
			}
			if err := writeJSON(out, "BENCH_statedb.json"); err != nil {
				return err
			}
		}
		// A store micro-scenario needs no network; skip the Fig. 11 run.
		return nil
	}

	if *deliverFlag {
		fmt.Printf("Measuring commit notification via deliver stream (%d clients, %d txs)...\n",
			*deliverClients, *deliverTxs)
		var results []perf.DeliverResult
		for _, v := range []struct {
			name string
			sec  core.SecurityConfig
		}{
			{"original", core.OriginalFabric()},
			{"defended", core.DefendedFabric()},
		} {
			v.sec.ValidationWorkers = *workers
			r, err := perf.MeasureDeliver(v.sec, v.name, *deliverClients, *deliverTxs)
			if err != nil {
				return err
			}
			results = append(results, r)
		}
		fmt.Println()
		fmt.Print(perf.RenderDeliver(results))
		fmt.Println()
	}

	if *reconcileFlag {
		fmt.Printf("Measuring anti-entropy reconciliation (%d missed txs, %d isolated ticks)...\n",
			*reconcileTxs, *reconcileIsolated)
		sec := core.OriginalFabric()
		sec.ValidationWorkers = *workers
		r, err := perf.MeasureReconcile(sec, *reconcileTxs, *reconcileIsolated, 1000)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(perf.RenderReconcile(r))
		fmt.Println()
	}

	if *pipeline {
		counts := []int{1, 2}
		if mp := runtime.GOMAXPROCS(0); mp > 2 {
			counts = append(counts, mp)
		}
		fmt.Printf("Measuring block validation pipeline (%d blocks x %d txs per worker setting)...\n",
			*pipelineBlocks, *pipelineTxs)
		sec := core.OriginalFabric()
		sec.ValidationWorkers = *workers
		results, err := perf.MeasureBlockValidation(sec, counts, *pipelineBlocks, *pipelineTxs)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(perf.RenderBlockValidation(results))
		fmt.Println()

		// The phase histograms accumulate across all settings of the
		// run; render them once for the latency breakdown.
		h, err := perf.NewHarness(sec, 0)
		if err != nil {
			return err
		}
		phaseTxs, err := h.EndorseTxs(0, *pipelineTxs)
		if err != nil {
			return err
		}
		if err := h.CommitBlock(h.BuildBlock(phaseTxs)); err != nil {
			return err
		}
		fmt.Print(perf.RenderTimings(h.TargetTimings()))
		fmt.Println()
	}

	if *throughput {
		var results []perf.ThroughputResult
		for _, v := range []struct {
			name string
			sec  core.SecurityConfig
		}{
			{"original", core.OriginalFabric()},
			{"defended", core.DefendedFabric()},
		} {
			v.sec.ValidationWorkers = *workers
			r, err := perf.MeasureThroughput(v.sec, v.name, *clients, *txs)
			if err != nil {
				return err
			}
			results = append(results, r)
		}
		fmt.Print(perf.RenderThroughput(results))
		fmt.Println()
	}

	fmt.Printf("Measuring execution and validation latency (%d runs per cell)...\n", *runs)
	results, err := perf.RunFig11(*runs)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(perf.Render(results))

	if *verbose {
		fmt.Println("\nDetailed samples:")
		for _, r := range results {
			fmt.Printf("%-10s %-11s %-8s mean=%-12s median=%-12s min=%-12s max=%s\n",
				r.Framework, r.Phase, r.Kind,
				r.Stats.Mean, r.Stats.Median, r.Stats.Min, r.Stats.Max)
		}
	}
	return nil
}
