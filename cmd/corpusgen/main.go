// Command corpusgen writes the synthetic GitHub corpus to disk (the
// offline substitute for the paper's 6392 collected projects; see
// DESIGN.md §1). The generated tree is scanned with pdcscan.
//
// Usage:
//
//	corpusgen -out ./corpus          # full paper-scale corpus
//	corpusgen -out ./corpus -tiny    # 64-project corpus with the same proportions
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/corpus"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("corpusgen", flag.ContinueOnError)
	out := fs.String("out", "", "output directory")
	tiny := fs.Bool("tiny", false, "generate the 64-project test corpus instead of the full 6392")
	seed := fs.Int64("seed", 0, "override the attribute-shuffle seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		fs.Usage()
		return fmt.Errorf("-out is required")
	}

	spec := corpus.PaperSpec()
	if *tiny {
		spec = corpus.TinySpec()
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	n, err := corpus.Generate(*out, spec)
	if err != nil {
		return err
	}
	fmt.Printf("generated %d projects under %s\n", n, *out)
	fmt.Println("scan with: pdcscan -root", *out)
	return nil
}
