// Package repro's root benchmark suite regenerates every table and
// figure of the paper's evaluation (§V). One benchmark (or benchmark
// family) exists per artifact:
//
//	Table I   -> BenchmarkTableI_RWSetSemantics
//	Table II  -> BenchmarkTableII_Matrix (plus TestTableIIMatrix in
//	             internal/attacks)
//	Fig. 5/6, §V-A3..A6 -> BenchmarkAttack_*
//	Fig. 7–10 -> BenchmarkFig7to10_CorpusAnalysis (plus the exact-count
//	             tests in internal/corpus)
//	Fig. 11   -> BenchmarkFig11_* (plus cmd/fabricbench for the
//	             paper-style 100-run report)
//
// Run with: go test -bench=. -benchmem .
package repro

import (
	"fmt"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/attacks"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/ledger"
	"repro/internal/perf"
	"repro/internal/rwset"
)

// BenchmarkTableI_RWSetSemantics measures read/write-set construction
// for the four transaction types of Table I.
func BenchmarkTableI_RWSetSemantics(b *testing.B) {
	cases := []struct {
		name  string
		build func(bd *rwset.Builder)
		want  rwset.TxType
	}{
		{"ReadOnly", func(bd *rwset.Builder) {
			bd.AddPvtRead("pdc1", "k1", rwset.KVRead{Key: "k1", Version: 1})
		}, rwset.TxReadOnly},
		{"WriteOnly", func(bd *rwset.Builder) {
			bd.AddPvtWrite("pdc1", "k1", rwset.KVWrite{Key: "k1", Value: []byte("val1")})
		}, rwset.TxWriteOnly},
		{"ReadWrite", func(bd *rwset.Builder) {
			bd.AddPvtRead("pdc1", "k1", rwset.KVRead{Key: "k1", Version: 1})
			bd.AddPvtWrite("pdc1", "k1", rwset.KVWrite{Key: "k1", Value: []byte("val1")})
		}, rwset.TxReadWrite},
		{"DeleteOnly", func(bd *rwset.Builder) {
			bd.AddPvtWrite("pdc1", "k1", rwset.KVWrite{Key: "k1", IsDelete: true})
		}, rwset.TxDeleteOnly},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bd := rwset.NewBuilder()
				tc.build(bd)
				set, _ := bd.Build("tx")
				if rwset.Classify(set) != tc.want {
					b.Fatalf("classified %v, want %v", rwset.Classify(set), tc.want)
				}
			}
		})
	}
}

// BenchmarkTableII_Matrix regenerates single cells of Table II (one
// fresh network + attack per iteration).
func BenchmarkTableII_Matrix(b *testing.B) {
	cells := []struct {
		name   string
		attack attacks.AttackKind
		cfg    attacks.ConfigKind
		want   attacks.CellResult
	}{
		{"ReadOnly_MAJORITY", attacks.AttackReadOnly, attacks.ConfigMajority, attacks.CellWorks},
		{"WriteOnly_CollEP", attacks.AttackWriteOnly, attacks.ConfigCollectionEP, attacks.CellFails},
		{"ReadOnly_Feature1", attacks.AttackReadOnly, attacks.ConfigFeature1, attacks.CellFails},
		{"LeakRead_Original", attacks.AttackLeakRead, attacks.ConfigOriginal, attacks.CellWorks},
		{"LeakRead_Feature2", attacks.AttackLeakRead, attacks.ConfigFeature2, attacks.CellFails},
	}
	for _, tc := range cells {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cell, _, err := attacks.Cell(tc.attack, tc.cfg)
				if err != nil {
					b.Fatal(err)
				}
				if cell != tc.want {
					b.Fatalf("cell = %v, want %v", cell, tc.want)
				}
			}
		})
	}
}

// BenchmarkAttack_FakeReadInjection is the Fig. 5 experiment: full
// network build + endorsement forgery + ordering + validation.
func BenchmarkAttack_FakeReadInjection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env, err := attacks.Setup(attacks.Scenario{Name: "bench"})
		if err != nil {
			b.Fatal(err)
		}
		if out := attacks.FakeReadInjection(env); !out.Succeeded {
			b.Fatalf("attack failed: %s", out.Detail)
		}
	}
}

// BenchmarkAttack_FakeWriteInjection is the Fig. 6 experiment.
func BenchmarkAttack_FakeWriteInjection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env, err := attacks.Setup(attacks.Scenario{Name: "bench"})
		if err != nil {
			b.Fatal(err)
		}
		if out := attacks.FakeWriteInjection(env); !out.Succeeded {
			b.Fatalf("attack failed: %s", out.Detail)
		}
	}
}

// BenchmarkAttack_NOutOf is the §V-A5 experiment (5 orgs, 2OutOf5, two
// non-member attackers).
func BenchmarkAttack_NOutOf(b *testing.B) {
	s := attacks.Scenario{
		Name:            "bench",
		Orgs:            []string{"org1", "org2", "org3", "org4", "org5"},
		ChaincodePolicy: "OutOf(2, org1.peer, org2.peer, org3.peer, org4.peer, org5.peer)",
		Malicious:       []string{"org3", "org4"},
	}
	for i := 0; i < b.N; i++ {
		env, err := attacks.Setup(s)
		if err != nil {
			b.Fatal(err)
		}
		if out := attacks.FakeWriteInjection(env); !out.Succeeded {
			b.Fatalf("attack failed: %s", out.Detail)
		}
	}
}

// BenchmarkAttack_PDCLeakage covers §V-B: extraction of private values
// from a non-member's blockchain.
func BenchmarkAttack_PDCLeakage(b *testing.B) {
	env, err := attacks.Setup(attacks.Scenario{Name: "bench", DisableForgers: true})
	if err != nil {
		b.Fatal(err)
	}
	if out := attacks.PDCReadLeakage(env); !out.Succeeded {
		b.Fatalf("setup leak failed: %s", out.Detail)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if leaks := attacks.ExtractPDCPayloads(env.Net.Peer("org3")); len(leaks) == 0 {
			b.Fatal("no payloads extracted")
		}
	}
}

// BenchmarkFig7to10_CorpusAnalysis generates the proportional test
// corpus once and measures the full static-analysis sweep that produces
// Figs. 7–10.
func BenchmarkFig7to10_CorpusAnalysis(b *testing.B) {
	root := b.TempDir()
	if _, err := corpus.Generate(root, corpus.TinySpec()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := analyzer.ScanCorpus(root)
		if err != nil {
			b.Fatal(err)
		}
		if report.ExplicitPDC == 0 {
			b.Fatal("scan found no PDC projects")
		}
	}
}

// fig11Exec benchmarks the execution phase of one transaction kind under
// one framework variant — the Fig. 11 execution-latency series.
func fig11Exec(b *testing.B, kind perf.TxKind, sec core.SecurityConfig) {
	// One seeded key suffices: the execution phase simulates without
	// committing, so every iteration can target the same key.
	h, err := perf.NewHarness(sec, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.ExecuteOnce(kind, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// fig11Validate benchmarks the validation phase of one transaction kind
// under one framework variant — the Fig. 11 validation-latency series.
func fig11Validate(b *testing.B, kind perf.TxKind, sec core.SecurityConfig) {
	// ValidateTx never commits, so a single pre-endorsed transaction on
	// a single seeded key can be validated repeatedly.
	h, err := perf.NewHarness(sec, 1)
	if err != nil {
		b.Fatal(err)
	}
	tx, err := h.EndorseTx(kind, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.ValidateOnce(tx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11_Execution_Read_Original(b *testing.B) {
	fig11Exec(b, perf.TxRead, core.OriginalFabric())
}
func BenchmarkFig11_Execution_Read_Defended(b *testing.B) {
	fig11Exec(b, perf.TxRead, core.DefendedFabric())
}
func BenchmarkFig11_Execution_Write_Original(b *testing.B) {
	fig11Exec(b, perf.TxWrite, core.OriginalFabric())
}
func BenchmarkFig11_Execution_Write_Defended(b *testing.B) {
	fig11Exec(b, perf.TxWrite, core.DefendedFabric())
}
func BenchmarkFig11_Execution_Delete_Original(b *testing.B) {
	fig11Exec(b, perf.TxDelete, core.OriginalFabric())
}
func BenchmarkFig11_Execution_Delete_Defended(b *testing.B) {
	fig11Exec(b, perf.TxDelete, core.DefendedFabric())
}

func BenchmarkFig11_Validation_Read_Original(b *testing.B) {
	fig11Validate(b, perf.TxRead, core.OriginalFabric())
}
func BenchmarkFig11_Validation_Read_Defended(b *testing.B) {
	fig11Validate(b, perf.TxRead, core.DefendedFabric())
}
func BenchmarkFig11_Validation_Write_Original(b *testing.B) {
	fig11Validate(b, perf.TxWrite, core.OriginalFabric())
}
func BenchmarkFig11_Validation_Write_Defended(b *testing.B) {
	fig11Validate(b, perf.TxWrite, core.DefendedFabric())
}
func BenchmarkFig11_Validation_Delete_Original(b *testing.B) {
	fig11Validate(b, perf.TxDelete, core.OriginalFabric())
}
func BenchmarkFig11_Validation_Delete_Defended(b *testing.B) {
	fig11Validate(b, perf.TxDelete, core.DefendedFabric())
}

// benchParallelValidation measures the block validation pipeline
// (docs/VALIDATION.md) at a fixed worker count: each iteration commits
// one freshly endorsed 32-transaction block on a peer, timing only the
// validation phase (endorsement and block assembly run with the timer
// stopped). The verify cache is flushed per iteration so every
// iteration pays identical first-touch verification costs.
func benchParallelValidation(b *testing.B, workers int, readWrite bool) {
	const txsPerBlock = 32
	sec := core.OriginalFabric()
	sec.ValidationWorkers = workers
	h, err := perf.NewHarness(sec, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var txs []*ledger.Transaction
		if readWrite {
			txs, err = h.EndorseReadWriteTxs(i, txsPerBlock)
		} else {
			txs, err = h.EndorseTxs(i, txsPerBlock)
		}
		if err != nil {
			b.Fatal(err)
		}
		block := h.BuildBlock(txs)
		h.FlushVerifyCache()
		b.StartTimer()
		if err := h.CommitBlock(block); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*txsPerBlock)/b.Elapsed().Seconds(), "tx/s")
}

// BenchmarkParallelValidation compares commit throughput of the
// validation pipeline at 1, 2 and 8 workers, for two transaction
// families: write-only blocks ("set": empty read set) and read-write
// blocks ("add": every transaction carries a public read, so the batched
// MVCC check against the sharded statedb is on the critical path). On
// multi-core hardware the 8-worker series shows the fan-out of signature
// verification; on a single core all series converge (the pipeline adds
// no contention).
func BenchmarkParallelValidation(b *testing.B) {
	for _, family := range []struct {
		name      string
		readWrite bool
	}{{"write", false}, {"readwrite", true}} {
		b.Run(family.name, func(b *testing.B) {
			for _, workers := range []int{1, 2, 8} {
				b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
					benchParallelValidation(b, workers, family.readWrite)
				})
			}
		})
	}
}

// BenchmarkEndToEnd_PublicTransaction measures the whole pipeline —
// endorsement, Raft ordering, block cut, validation, commit — for a
// public transaction, a context figure for the latency results.
func BenchmarkEndToEnd_PublicTransaction(b *testing.B) {
	h, err := perf.NewHarness(core.OriginalFabric(), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.SubmitPublicOnce(i); err != nil {
			b.Fatal(err)
		}
	}
}
